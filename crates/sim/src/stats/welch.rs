//! Welch's graphical warm-up detection.
//!
//! A closed simulation starts empty-ish and takes time to reach steady
//! state; measuring from t = 0 biases every mean. Welch's classical
//! procedure averages the observation series across replications, smooths
//! it with a centred moving average, and picks the truncation point where
//! the smoothed curve settles near its long-run level. The experiment
//! harness uses it to justify (or skip) a warm-up for a given
//! configuration.

/// Average `series[r][t]` across replications `r` at each index `t`,
/// truncating to the shortest replication.
pub fn cross_replication_mean(series: &[Vec<f64>]) -> Vec<f64> {
    let Some(len) = series.iter().map(Vec::len).min() else {
        return Vec::new();
    };
    (0..len)
        .map(|t| series.iter().map(|s| s[t]).sum::<f64>() / series.len() as f64)
        .collect()
}

/// Centred moving average with window half-width `w` (window size
/// `2w + 1`, shrinking symmetrically near the edges, as Welch specifies).
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    (0..xs.len())
        .map(|t| {
            let k = w.min(t).min(xs.len() - 1 - t);
            let lo = t - k;
            let hi = t + k;
            xs[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect()
}

/// Suggest a truncation index: the first `t` (in the first three
/// quarters of the series) at which the smoothed curve is within
/// `tolerance` (relative) of the mean of the final quarter **and** at
/// least 90% of the points from `t` onward stay within it. The 90%
/// allowance makes the rule robust to residual window noise — a strict
/// "every later point" rule rejects perfectly stationary but noisy
/// series. Returns `None` if the series never settles.
///
/// # Panics
/// Panics if `tolerance` is not positive.
pub fn suggest_truncation(smoothed: &[f64], tolerance: f64) -> Option<usize> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    if smoothed.len() < 8 {
        return None;
    }
    let tail = &smoothed[smoothed.len() - smoothed.len() / 4..];
    let level = tail.iter().sum::<f64>() / tail.len() as f64;
    // lint:allow(D003): division-by-zero guard for the relative-tolerance
    // test below; any non-zero level, however small, is usable
    if level == 0.0 {
        return None;
    }
    let within = |x: f64| ((x - level) / level).abs() <= tolerance;
    // Suffix counts of out-of-tolerance points.
    let mut bad_suffix = vec![0usize; smoothed.len() + 1];
    for (t, &x) in smoothed.iter().enumerate().rev() {
        bad_suffix[t] = bad_suffix[t + 1] + usize::from(!within(x));
    }
    let limit = smoothed.len() - smoothed.len() / 4;
    (0..limit).find(|&t| {
        let remaining = smoothed.len() - t;
        within(smoothed[t]) && bad_suffix[t] * 10 <= remaining
    })
}

/// One-call Welch procedure: replication series → suggested truncation
/// index (in observation units), or `None` if undecidable.
pub fn welch_warmup(series: &[Vec<f64>], window: usize, tolerance: f64) -> Option<usize> {
    let mean = cross_replication_mean(series);
    if mean.is_empty() {
        return None;
    }
    let smooth = moving_average(&mean, window);
    suggest_truncation(&smooth, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A series with an exponential transient settling at `level`.
    fn transient(level: f64, warm: usize, len: usize, phase: f64) -> Vec<f64> {
        (0..len)
            .map(|t| {
                let decay = (-(t as f64) / warm as f64).exp();
                level * (1.0 - decay) + 0.05 * level * ((t as f64 + phase) * 0.7).sin()
            })
            .collect()
    }

    #[test]
    fn cross_replication_mean_truncates_and_averages() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![3.0, 4.0, 5.0];
        let m = cross_replication_mean(&[a, b]);
        assert_eq!(m, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn moving_average_shrinks_at_edges() {
        let xs = vec![0.0, 10.0, 20.0, 30.0, 40.0];
        let m = moving_average(&xs, 2);
        assert_eq!(m[0], 0.0); // window of 1 at the left edge
        assert_eq!(m[2], 20.0); // full window
        assert_eq!(m[4], 40.0); // window of 1 at the right edge
        assert!((m[1] - 10.0).abs() < 1e-12); // symmetric 3-window
    }

    #[test]
    fn detects_transient_end() {
        let reps: Vec<Vec<f64>> = (0..5)
            .map(|r| transient(100.0, 20, 400, r as f64 * 13.0))
            .collect();
        let cut = welch_warmup(&reps, 5, 0.03).expect("must settle");
        // The transient has effectively died by ~4 time constants.
        assert!(
            (40..=160).contains(&cut),
            "truncation at {cut}, expected near 80"
        );
    }

    #[test]
    fn stationary_series_truncates_immediately() {
        let reps: Vec<Vec<f64>> = (0..3)
            .map(|r| {
                (0..100)
                    .map(|t| 50.0 + ((t + r) as f64 * 0.9).sin())
                    .collect()
            })
            .collect();
        let cut = welch_warmup(&reps, 10, 0.05).expect("stationary settles");
        assert!(cut <= 10, "stationary series truncated at {cut}");
    }

    #[test]
    fn unsettled_series_returns_none() {
        // Monotone ramp: never within tolerance of its final level early.
        let reps = vec![(0..100).map(|t| t as f64).collect::<Vec<_>>()];
        assert_eq!(welch_warmup(&reps, 3, 0.01), None);
    }

    #[test]
    fn too_short_series_returns_none() {
        let reps = vec![vec![1.0, 2.0, 3.0]];
        assert_eq!(welch_warmup(&reps, 1, 0.05), None);
        assert_eq!(welch_warmup(&[], 1, 0.05), None);
    }
}
