//! Welch's graphical warm-up detection.
//!
//! A closed simulation starts empty-ish and takes time to reach steady
//! state; measuring from t = 0 biases every mean. Welch's classical
//! procedure averages the observation series across replications, smooths
//! it with a centred moving average, and picks the truncation point where
//! the smoothed curve settles near its long-run level. The experiment
//! harness uses it to justify (or skip) a warm-up for a given
//! configuration.

/// Average `series[r][t]` across replications `r` at each index `t`,
/// truncating to the shortest replication.
pub fn cross_replication_mean(series: &[Vec<f64>]) -> Vec<f64> {
    let Some(len) = series.iter().map(Vec::len).min() else {
        return Vec::new();
    };
    (0..len)
        .map(|t| series.iter().map(|s| s[t]).sum::<f64>() / series.len() as f64)
        .collect()
}

/// Centred moving average with window half-width `w` (window size
/// `2w + 1`, shrinking symmetrically near the edges, as Welch specifies).
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    (0..xs.len())
        .map(|t| {
            let k = w.min(t).min(xs.len() - 1 - t);
            let lo = t - k;
            let hi = t + k;
            xs[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect()
}

/// Suggest a truncation index: the first `t` (in the first three
/// quarters of the series) at which the smoothed curve is within
/// `tolerance` (relative) of the mean of the final quarter **and** at
/// least 90% of the points from `t` onward stay within it. The 90%
/// allowance makes the rule robust to residual window noise — a strict
/// "every later point" rule rejects perfectly stationary but noisy
/// series. Returns `None` if the series never settles.
///
/// # Panics
/// Panics if `tolerance` is not positive.
pub fn suggest_truncation(smoothed: &[f64], tolerance: f64) -> Option<usize> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    if smoothed.len() < 8 {
        return None;
    }
    let tail = &smoothed[smoothed.len() - smoothed.len() / 4..];
    let level = tail.iter().sum::<f64>() / tail.len() as f64;
    // lint:allow(D003): division-by-zero guard for the relative-tolerance
    // test below; any non-zero level, however small, is usable
    if level == 0.0 {
        return None;
    }
    let within = |x: f64| ((x - level) / level).abs() <= tolerance;
    // Suffix counts of out-of-tolerance points.
    let mut bad_suffix = vec![0usize; smoothed.len() + 1];
    for (t, &x) in smoothed.iter().enumerate().rev() {
        bad_suffix[t] = bad_suffix[t + 1] + usize::from(!within(x));
    }
    let limit = smoothed.len() - smoothed.len() / 4;
    (0..limit).find(|&t| {
        let remaining = smoothed.len() - t;
        within(smoothed[t]) && bad_suffix[t] * 10 <= remaining
    })
}

/// Welch's two-sample t statistic and Welch–Satterthwaite degrees of
/// freedom for comparing two means from `(mean, sample variance, n)`
/// summaries with unequal variances. Used to cross-check the single-run
/// batch-means estimator against independent replications: a |t| below
/// the critical value means the two estimators agree.
///
/// Degenerate case: with both variances zero the statistic is 0 when the
/// means coincide and ±∞ otherwise (df reported as 1).
///
/// # Panics
/// Panics unless both sides have at least two samples.
pub fn welch_t(mean_a: f64, var_a: f64, n_a: u64, mean_b: f64, var_b: f64, n_b: u64) -> (f64, f64) {
    assert!(
        n_a >= 2 && n_b >= 2,
        "Welch's t needs at least two samples per side"
    );
    let sa = var_a / n_a as f64;
    let sb = var_b / n_b as f64;
    let se2 = sa + sb;
    // lint:allow(D003): exact-zero variance is the degenerate branch
    if se2 == 0.0 {
        let diff = mean_a - mean_b;
        // lint:allow(D003): identical means with no spread — t is 0
        let t = if diff == 0.0 {
            0.0
        } else {
            f64::INFINITY.copysign(diff)
        };
        return (t, 1.0);
    }
    let t = (mean_a - mean_b) / se2.sqrt();
    let df = se2 * se2 / (sa * sa / (n_a - 1) as f64 + sb * sb / (n_b - 1) as f64);
    (t, df)
}

/// One-call Welch procedure: replication series → suggested truncation
/// index (in observation units), or `None` if undecidable.
pub fn welch_warmup(series: &[Vec<f64>], window: usize, tolerance: f64) -> Option<usize> {
    let mean = cross_replication_mean(series);
    if mean.is_empty() {
        return None;
    }
    let smooth = moving_average(&mean, window);
    suggest_truncation(&smooth, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A series with an exponential transient settling at `level`.
    fn transient(level: f64, warm: usize, len: usize, phase: f64) -> Vec<f64> {
        (0..len)
            .map(|t| {
                let decay = (-(t as f64) / warm as f64).exp();
                level * (1.0 - decay) + 0.05 * level * ((t as f64 + phase) * 0.7).sin()
            })
            .collect()
    }

    #[test]
    fn cross_replication_mean_truncates_and_averages() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![3.0, 4.0, 5.0];
        let m = cross_replication_mean(&[a, b]);
        assert_eq!(m, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn moving_average_shrinks_at_edges() {
        let xs = vec![0.0, 10.0, 20.0, 30.0, 40.0];
        let m = moving_average(&xs, 2);
        assert_eq!(m[0], 0.0); // window of 1 at the left edge
        assert_eq!(m[2], 20.0); // full window
        assert_eq!(m[4], 40.0); // window of 1 at the right edge
        assert!((m[1] - 10.0).abs() < 1e-12); // symmetric 3-window
    }

    #[test]
    fn detects_transient_end() {
        let reps: Vec<Vec<f64>> = (0..5)
            .map(|r| transient(100.0, 20, 400, r as f64 * 13.0))
            .collect();
        let cut = welch_warmup(&reps, 5, 0.03).expect("must settle");
        // The transient has effectively died by ~4 time constants.
        assert!(
            (40..=160).contains(&cut),
            "truncation at {cut}, expected near 80"
        );
    }

    #[test]
    fn stationary_series_truncates_immediately() {
        let reps: Vec<Vec<f64>> = (0..3)
            .map(|r| {
                (0..100)
                    .map(|t| 50.0 + ((t + r) as f64 * 0.9).sin())
                    .collect()
            })
            .collect();
        let cut = welch_warmup(&reps, 10, 0.05).expect("stationary settles");
        assert!(cut <= 10, "stationary series truncated at {cut}");
    }

    #[test]
    fn unsettled_series_returns_none() {
        // Monotone ramp: never within tolerance of its final level early.
        let reps = vec![(0..100).map(|t| t as f64).collect::<Vec<_>>()];
        assert_eq!(welch_warmup(&reps, 3, 0.01), None);
    }

    #[test]
    fn too_short_series_returns_none() {
        let reps = vec![vec![1.0, 2.0, 3.0]];
        assert_eq!(welch_warmup(&reps, 1, 0.05), None);
        assert_eq!(welch_warmup(&[], 1, 0.05), None);
    }

    #[test]
    fn welch_t_known_value() {
        // Textbook case: means 10 vs 12, variances 4 and 9, n = 20 each.
        // se² = 4/20 + 9/20 = 0.65; t = -2 / sqrt(0.65) ≈ -2.4807.
        let (t, df) = welch_t(10.0, 4.0, 20, 12.0, 9.0, 20);
        assert!((t + 2.480_694).abs() < 1e-5, "t = {t}");
        // Welch–Satterthwaite: 0.65² / ((0.2² + 0.45²)/19) ≈ 33.1.
        assert!((df - 33.1).abs() < 0.2, "df = {df}");
    }

    #[test]
    fn welch_t_is_zero_for_identical_summaries() {
        let (t, _) = welch_t(5.0, 2.0, 10, 5.0, 2.0, 10);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn welch_t_df_within_classical_bounds() {
        // df lies in [min(n_a, n_b) - 1, n_a + n_b - 2].
        let (_, df) = welch_t(1.0, 1.0, 5, 2.0, 50.0, 30);
        assert!((4.0..=33.0).contains(&df), "df = {df}");
    }

    #[test]
    fn welch_t_degenerate_variances() {
        let (t, _) = welch_t(3.0, 0.0, 4, 3.0, 0.0, 4);
        assert_eq!(t, 0.0);
        let (t, _) = welch_t(4.0, 0.0, 4, 3.0, 0.0, 4);
        assert_eq!(t, f64::INFINITY);
        let (t, _) = welch_t(2.0, 0.0, 4, 3.0, 0.0, 4);
        assert_eq!(t, f64::NEG_INFINITY);
    }
}
