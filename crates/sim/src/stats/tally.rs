//! Observation tally: count / mean / variance / extrema via Welford's
//! online algorithm (numerically stable; no stored samples).

/// Two-tailed Student-t critical values at the 95% level, indexed by
/// degrees of freedom (`T_TABLE[df - 1]` for df 1–30). Beyond 30 df the
/// normal approximation (1.96) is accurate to well under 2%.
const T_TABLE: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 95% two-tailed Student-t critical value for `df` degrees of
/// freedom (normal 1.96 beyond the table; `df = 0` has no variance
/// estimate and conservatively maps to the df = 1 value).
pub fn t_critical_95(df: u64) -> f64 {
    match df {
        0 => T_TABLE[0],
        d if d <= 30 => T_TABLE[(d - 1) as usize],
        _ => 1.96,
    }
}

/// Streaming summary of scalar observations.
#[derive(Clone, Debug, Default)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Empty tally.
    pub fn new() -> Self {
        Tally {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 if empty (a convention convenient for reports).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of a 95% confidence interval for the mean, using the
    /// Student-t critical value at `count − 1` degrees of freedom.
    ///
    /// The harness runs as few as 3 replications, where the normal 1.96
    /// understates the interval ~2.2× (t(df=2) = 4.303); the t factor is
    /// exact for small samples and converges to 1.96 for large ones.
    /// Returns 0 with fewer than two observations (no variance estimate).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        t_critical_95(self.count - 1) * self.std_err()
    }

    /// Smallest observation; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another tally into this one (parallel-friendly combine).
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tally_is_zeroed() {
        let t = Tally::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn known_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 32/7.
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
    }

    #[test]
    fn single_observation() {
        let mut t = Tally::new();
        t.record(3.5);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.ci95_half_width(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Tally::new();
        a.record(1.0);
        a.record(2.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Tally::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = Tally::new();
        let mut b = Tally::new();
        b.record(5.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn ci95_uses_student_t_at_small_samples() {
        // Three replications → df = 2 → t = 4.303, not the normal 1.96.
        let mut t = Tally::new();
        for x in [1.0, 2.0, 3.0] {
            t.record(x);
        }
        assert_eq!(t.ci95_half_width(), 4.303 * t.std_err());

        // Two observations → df = 1 → t = 12.706.
        let mut t = Tally::new();
        t.record(5.0);
        t.record(9.0);
        assert_eq!(t.ci95_half_width(), 12.706 * t.std_err());
    }

    #[test]
    fn ci95_converges_to_normal_for_large_samples() {
        let mut t = Tally::new();
        for i in 0..100 {
            t.record(f64::from(i % 7));
        }
        assert_eq!(t.ci95_half_width(), 1.96 * t.std_err());
    }

    #[test]
    fn t_critical_is_monotone_and_bounded_below_by_normal() {
        let mut prev = f64::INFINITY;
        for df in 1..=40 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t table not monotone at df {df}");
            assert!(t >= 1.96, "t below normal at df {df}");
            prev = t;
        }
        assert_eq!(t_critical_95(2), 4.303);
        assert_eq!(t_critical_95(31), 1.96);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let mut t = Tally::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            t.record(x);
        }
        assert!(
            (t.variance() - 30.0).abs() < 1e-6,
            "variance {}",
            t.variance()
        );
    }
}
