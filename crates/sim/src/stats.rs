//! Output statistics.
//!
//! Small, allocation-free accumulators used both inside the simulation
//! (busy time, queue populations) and by the experiment harness (response
//! time tallies, replication confidence intervals).

mod batch;
mod busy;
mod histogram;
mod tally;
mod timeweighted;
pub mod welch;

pub use batch::BatchMeans;
pub use busy::BusyTime;
pub use histogram::Histogram;
pub use tally::Tally;
pub use timeweighted::TimeWeighted;
pub use welch::welch_warmup;
