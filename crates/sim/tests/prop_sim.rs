//! Property tests for the simulation kernel: the event queues against a
//! reference sort, the server against conservation laws, and the
//! statistics against naive recomputation.

use proptest::prelude::*;

use lockgran_sim::{
    CalendarQueue, Class, CompletionOutcome, Dur, EventQueue, Job, JobId, Server, Tally, Time,
    TimeWeighted,
};

proptest! {
    /// The heap-based queue pops exactly the stable sort of its input.
    #[test]
    fn event_queue_is_stable_sort(times in proptest::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ticks(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i)); // stable by construction
        let popped: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.ticks(), e))).collect();
        prop_assert_eq!(popped, expected);
    }

    /// The calendar queue agrees with the heap queue under an arbitrary
    /// interleaving of pushes and pops (the simulation access pattern:
    /// never push into the past).
    #[test]
    fn calendar_matches_heap(
        script in proptest::collection::vec((0u64..400, prop::bool::ANY), 1..300)
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut clock = 0u64;
        for (id, (delay, do_pop)) in script.into_iter().enumerate() {
            let id = id as u64;
            cal.push(Time::from_ticks(clock + delay), id);
            heap.push(Time::from_ticks(clock + delay), id);
            if do_pop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                if let Some((t, _)) = a {
                    clock = t.ticks();
                }
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Server conservation: for any job mix, total busy time equals total
    /// demand, every job completes exactly once, and per-class busy time
    /// equals per-class demand — regardless of preemptions.
    #[test]
    fn server_conserves_work(
        jobs in proptest::collection::vec((1u64..50, 0u64..30, prop::bool::ANY), 1..60)
    ) {
        let mut server = Server::new();
        let mut pending: Vec<lockgran_sim::Completion> = Vec::new();
        let mut finished = 0usize;
        let mut now = Time::ZERO;
        let mut demand = [Dur::ZERO; 2];

        let drain_until = |server: &mut Server,
                               pending: &mut Vec<lockgran_sim::Completion>,
                               finished: &mut usize,
                               horizon: Time|
         -> Time {
            let mut now = Time::ZERO;
            loop {
                pending.sort_by_key(|c| c.at);
                let Some(idx) = pending.iter().position(|c| c.at <= horizon) else {
                    return now;
                };
                let c = pending.remove(idx);
                now = c.at;
                match server.on_completion(c.at, c.token) {
                    CompletionOutcome::Stale => {}
                    CompletionOutcome::Finished { next, .. } => {
                        *finished += 1;
                        if let Some(n) = next {
                            pending.push(n);
                        }
                    }
                }
            }
        };

        for (i, (dur, gap, is_lock)) in jobs.iter().enumerate() {
            now += Dur::from_ticks(*gap);
            // Fire everything due before this submission.
            drain_until(&mut server, &mut pending, &mut finished, now);
            let class = if *is_lock { Class::Lock } else { Class::Transaction };
            demand[if *is_lock { 0 } else { 1 }] += Dur::from_ticks(*dur);
            if let Some(c) = server.submit(
                now,
                Job { id: JobId(i as u64), demand: Dur::from_ticks(*dur), class },
            ) {
                pending.push(c);
            }
        }
        drain_until(&mut server, &mut pending, &mut finished, Time::from_ticks(u64::MAX / 2));

        prop_assert_eq!(finished, jobs.len(), "every job completes exactly once");
        prop_assert_eq!(server.busy_time(Class::Lock), demand[0]);
        prop_assert_eq!(server.busy_time(Class::Transaction), demand[1]);
        prop_assert!(server.is_idle());
    }

    /// Tally matches a naive two-pass mean/variance computation.
    #[test]
    fn tally_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut t = Tally::new();
        for &x in &xs {
            t.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((t.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((t.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(t.min().unwrap(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(t.max().unwrap(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// TimeWeighted matches a naive piecewise integration.
    #[test]
    fn timeweighted_matches_naive(
        steps in proptest::collection::vec((1u64..100, 0.0f64..50.0), 1..100)
    ) {
        let mut tw = TimeWeighted::new();
        let mut now = Time::ZERO;
        let mut area = 0.0;
        let mut level = 0.0;
        for (gap, new_level) in steps {
            let next = now + Dur::from_ticks(gap);
            area += level * Dur::from_ticks(gap).units();
            tw.record(next, new_level);
            level = new_level;
            now = next;
        }
        let horizon = now + Dur::from_ticks(10);
        area += level * Dur::from_ticks(10).units();
        let expected = area / horizon.units();
        prop_assert!((tw.mean_at(horizon) - expected).abs() < 1e-9);
    }
}
