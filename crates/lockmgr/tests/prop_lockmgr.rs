//! Property tests for the lock manager: random operation sequences must
//! preserve the table invariants, the conservative protocol must stay
//! all-or-nothing, and incremental 2PL must never leave a waits-for
//! cycle standing.

use proptest::prelude::*;

use lockgran_lockmgr::{
    AcquireOutcome, ConservativeOutcome, ConservativeScheduler, GranuleId, LockMode, LockTable,
    TwoPhaseScheduler, TxnId,
};

fn arb_mode() -> impl Strategy<Value = LockMode> {
    prop_oneof![
        Just(LockMode::IS),
        Just(LockMode::IX),
        Just(LockMode::S),
        Just(LockMode::SIX),
        Just(LockMode::X),
    ]
}

/// An operation against the raw lock table.
#[derive(Debug, Clone)]
enum Op {
    Lock(u64, u64, LockMode),
    Unlock(u64, u64),
    ReleaseAll(u64),
}

fn arb_op(txns: u64, granules: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..txns, 0..granules, arb_mode()).prop_map(|(t, g, m)| Op::Lock(t, g, m)),
        (0..txns, 0..granules).prop_map(|(t, g)| Op::Unlock(t, g)),
        (0..txns).prop_map(Op::ReleaseAll),
    ]
}

proptest! {
    /// Invariants hold after every step of any operation sequence.
    /// Requests by waiting transactions are skipped (the table forbids
    /// them by contract), mirroring how the schedulers drive it.
    #[test]
    fn table_invariants_hold(ops in proptest::collection::vec(arb_op(6, 8), 1..200)) {
        let mut table = LockTable::new();
        let mut waiting: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for op in ops {
            match op {
                Op::Lock(t, g, m) => {
                    if waiting.contains(&t) {
                        continue; // a blocked transaction cannot issue requests
                    }
                    match table.lock(TxnId(t), GranuleId(g), m) {
                        lockgran_lockmgr::LockOutcome::Granted => {}
                        lockgran_lockmgr::LockOutcome::Queued { blockers } => {
                            prop_assert!(!blockers.is_empty());
                            prop_assert!(!blockers.contains(&TxnId(t)));
                            waiting.insert(t);
                        }
                    }
                }
                Op::Unlock(t, g) => {
                    if waiting.contains(&t) {
                        continue;
                    }
                    for (granted, _) in table.unlock(TxnId(t), GranuleId(g)) {
                        waiting.remove(&granted.0);
                    }
                }
                Op::ReleaseAll(t) => {
                    for (granted, _, _) in table.release_all(TxnId(t)) {
                        waiting.remove(&granted.0);
                    }
                    waiting.remove(&t);
                }
            }
            if let Err(e) = table.check_invariants() {
                prop_assert!(false, "invariant violated: {e}");
            }
        }
    }

    /// Conservative protocol: after any sequence of request/release
    /// rounds, a blocked transaction holds nothing and granted
    /// transactions hold exactly their requested set.
    #[test]
    fn conservative_all_or_nothing(
        rounds in proptest::collection::vec(
            proptest::collection::vec(0u64..12, 1..6), // lock sets per txn
            1..20
        )
    ) {
        let mut s = ConservativeScheduler::new();
        let mut granted: Vec<(u64, Vec<u64>)> = Vec::new();
        for (serial, set) in rounds.into_iter().enumerate() {
            let serial = serial as u64;
            let mut dedup = set.clone();
            dedup.sort_unstable();
            dedup.dedup();
            let req: Vec<(GranuleId, LockMode)> =
                dedup.iter().map(|&g| (GranuleId(g), LockMode::X)).collect();
            match s.request_all(TxnId(serial), &req) {
                ConservativeOutcome::Granted => {
                    let mut holdings: Vec<u64> =
                        s.holdings(TxnId(serial)).iter().map(|g| g.0).collect();
                    holdings.sort_unstable();
                    prop_assert_eq!(&holdings, &dedup, "granted set mismatch");
                    granted.push((serial, dedup));
                    // Occasionally complete the *oldest* granted txn.
                    if granted.len() > 2 {
                        let (done, _) = granted.remove(0);
                        let woken = s.release(TxnId(done));
                        // Woken transactions are dropped (not retried) in
                        // this property — they must hold nothing.
                        for w in woken {
                            prop_assert!(s.holdings(w).is_empty());
                        }
                    }
                }
                ConservativeOutcome::Blocked { blocker } => {
                    prop_assert!(s.holdings(TxnId(serial)).is_empty());
                    prop_assert_ne!(blocker, TxnId(serial));
                }
            }
            s.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("scheduler invariant: {e}"))
            })?;
        }
    }

    /// Incremental 2PL: acquire() never returns with a waits-for cycle
    /// still present (every deadlock is broken on detection), and the
    /// table invariants survive arbitrary interleavings.
    #[test]
    fn two_phase_breaks_every_cycle(
        ops in proptest::collection::vec((0u64..5, 0u64..6, prop::bool::ANY), 1..150)
    ) {
        let mut s = TwoPhaseScheduler::new();
        let mut waiting: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let alive: std::collections::HashSet<u64> = (0..5).collect();
        for (t, g, release) in ops {
            if !alive.contains(&t) || waiting.contains(&t) {
                continue;
            }
            if release {
                for w in s.release(TxnId(t)) {
                    waiting.remove(&w.0);
                }
                // The transaction id is reused as a fresh incarnation.
            } else {
                match s.acquire(TxnId(t), GranuleId(g), LockMode::X) {
                    AcquireOutcome::Granted => {}
                    AcquireOutcome::Waiting { .. } => {
                        waiting.insert(t);
                    }
                    AcquireOutcome::Deadlock { victim, granted } => {
                        if victim.0 != t {
                            // The requester survived and is still queued
                            // unless the abort granted its request.
                            waiting.insert(t);
                        }
                        waiting.remove(&victim.0);
                        for w in granted {
                            waiting.remove(&w.0);
                        }
                        prop_assert!(s.table().holdings(victim).is_empty());
                    }
                }
            }
            s.table().check_invariants().map_err(|e| {
                TestCaseError::fail(format!("table invariant: {e}"))
            })?;
        }
    }
}

/// Mode algebra: supremum is a least upper bound w.r.t. the conflict
/// preorder (checked exhaustively, not randomly — the domain is tiny).
#[test]
fn supremum_is_least_upper_bound() {
    for &a in &LockMode::ALL {
        for &b in &LockMode::ALL {
            let s = a.supremum(b);
            // Upper bound: s conflicts with everything a or b conflicts with.
            for &c in &LockMode::ALL {
                if !a.compatible(c) || !b.compatible(c) {
                    assert!(!s.compatible(c), "sup({a},{b})={s} too weak vs {c}");
                }
            }
            // Least: no strictly weaker mode (smaller conflict set) is
            // also an upper bound.
            for &w in &LockMode::ALL {
                if w == s {
                    continue;
                }
                let w_upper = LockMode::ALL.iter().all(|&c| {
                    (a.compatible(c) && b.compatible(c)) || !w.compatible(c)
                });
                let w_strictly_weaker_conflicts = LockMode::ALL
                    .iter()
                    .filter(|&&c| !w.compatible(c))
                    .count()
                    < LockMode::ALL.iter().filter(|&&c| !s.compatible(c)).count();
                assert!(
                    !(w_upper && w_strictly_weaker_conflicts),
                    "sup({a},{b})={s} is not least: {w} also works"
                );
            }
        }
    }
}
