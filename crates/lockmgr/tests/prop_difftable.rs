//! Differential property test: the pooled, hash-indexed
//! [`LockTable`] against its executable specification
//! [`ReferenceLockTable`] (`lockmgr::reference`).
//!
//! Seeded random request streams drive both tables in lockstep; after
//! every operation the observable outcome must be identical — grant vs
//! queue, blocker lists, wake lists (contents *and* order), holdings
//! order, counters, probes. Small transaction/granule spaces keep
//! contention high so upgrades, upgrade-jumps-queue, waiting-re-request
//! merges and greedy multi-waiter promotion runs all occur constantly.

use lockgran_lockmgr::{GranuleId, LockMode, LockOutcome, LockTable, ReferenceLockTable, TxnId};
use lockgran_sim::SimRng;

const MODES: [LockMode; 5] = [
    LockMode::IS,
    LockMode::IX,
    LockMode::S,
    LockMode::SIX,
    LockMode::X,
];

/// Number of (seed, stream) repetitions. The quick profile
/// (`QUICK_PROP=1`, set by `verify.sh --quick`) trims the seed count.
fn seeds() -> u64 {
    if std::env::var_os("QUICK_PROP").is_some() {
        4
    } else {
        24
    }
}

fn drive(seed: u64, txns: u64, granules: u64, ops: usize) {
    let mut rng = SimRng::new(seed);
    let mut real = LockTable::new();
    let mut spec = ReferenceLockTable::new();
    let mut blockers = Vec::new();
    let mut woken = Vec::new();
    let mut released = Vec::new();

    for step in 0..ops {
        let txn = TxnId(rng.uniform_inclusive(0, txns - 1));
        let granule = GranuleId(rng.uniform_inclusive(0, granules - 1));
        let mode = MODES[rng.uniform_inclusive(0, 4) as usize];
        let ctx =
            |what: &str| format!("seed {seed} step {step} {what} ({txn:?} {granule:?} {mode})");

        match rng.uniform_inclusive(0, 9) {
            // Lock-heavy mix keeps queues deep.
            0..=5 => {
                let granted = real.lock_into(txn, granule, mode, &mut blockers);
                let expected = spec.lock(txn, granule, mode);
                match expected {
                    LockOutcome::Granted => {
                        assert!(granted, "{}", ctx("spec granted, real queued"))
                    }
                    LockOutcome::Queued { blockers: want } => {
                        assert!(!granted, "{}", ctx("spec queued, real granted"));
                        assert_eq!(blockers, want, "{}", ctx("blocker list diverged"));
                    }
                }
            }
            6..=7 => {
                real.unlock_into(txn, granule, &mut woken);
                let want = spec.unlock(txn, granule);
                assert_eq!(woken, want, "{}", ctx("unlock wake list diverged"));
            }
            _ => {
                real.release_all_into(txn, &mut released);
                let want = spec.release_all(txn);
                assert_eq!(released, want, "{}", ctx("release_all wake list diverged"));
            }
        }

        // Probes after every op (cheap, and they exercise the read paths
        // at every intermediate state).
        assert_eq!(
            real.held_mode(txn, granule),
            spec.held_mode(txn, granule),
            "{}",
            ctx("held_mode diverged")
        );
        assert_eq!(
            real.would_grant(txn, granule, mode),
            spec.would_grant(txn, granule, mode),
            "{}",
            ctx("would_grant diverged")
        );
        let want = spec.conflicts_with(txn, granule, mode);
        assert_eq!(
            real.conflicts_with(txn, granule, mode),
            want,
            "{}",
            ctx("conflicts_with diverged")
        );
        assert_eq!(
            real.first_conflict(txn, granule, mode),
            want.first().copied(),
            "{}",
            ctx("first_conflict diverged")
        );

        // Full-state audit every 64 steps (holdings of every txn, entry
        // count, counters) plus the production invariant checker.
        if step % 64 == 0 {
            for t in 0..txns {
                let t = TxnId(t);
                let holdings: Vec<GranuleId> = real.holdings(t).collect();
                assert_eq!(
                    holdings,
                    spec.holdings(t),
                    "seed {seed} step {step}: holdings of {t:?} diverged"
                );
            }
            assert_eq!(
                real.active_granules(),
                spec.active_granules(),
                "seed {seed} step {step}"
            );
            assert_eq!(
                real.grant_count(),
                spec.grant_count(),
                "seed {seed} step {step}"
            );
            assert_eq!(
                real.wait_count(),
                spec.wait_count(),
                "seed {seed} step {step}"
            );
            real.check_invariants().unwrap();
        }
    }
}

/// High contention: few granules, many transactions.
#[test]
fn differential_high_contention() {
    for seed in 0..seeds() {
        drive(seed, 8, 4, 2_000);
    }
}

/// Medium contention with a wider granule space (more distinct entries,
/// more pool churn and hash growth in the production table).
#[test]
fn differential_wide_granule_space() {
    for seed in 0..seeds() {
        drive(1_000 + seed, 12, 64, 2_000);
    }
}

/// Two-transaction duels: maximizes upgrade deadlock-free interleavings
/// (S+S then both upgrade, re-request while waiting, etc.).
#[test]
fn differential_upgrade_duels() {
    for seed in 0..seeds() {
        drive(2_000 + seed, 2, 3, 2_000);
    }
}
