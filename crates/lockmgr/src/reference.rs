//! Executable specification of [`crate::table::LockTable`].
//!
//! A deliberately naive lock table over `std::collections` ordered maps:
//! no pooling, no intrusive lists, no hash index — just the grant policy
//! from the [`crate::table`] module docs written in the most obvious way
//! possible. It exists solely as the oracle for the differential
//! property test (`tests/prop_difftable.rs`): every observable of the
//! production table — grant/queue outcomes, blocker lists, wake order,
//! holdings order, counters — must match this implementation on any
//! request sequence.
//!
//! Semantics mirrored exactly (see the production module docs):
//!
//! * strict-FIFO queueing — a request conflicts with earlier waiters too;
//! * upgrades jump the queue but respect the other holders;
//! * a re-request by a transaction already waiting merges into its queued
//!   waiter (supremum mode, queue position kept);
//! * greedy promotion of the longest compatible queue prefix on release;
//! * `release_all` promotes freed holdings in append order first, then
//!   cancels queued waits in ascending granule order.
//!
//! This module is intentionally *not* allocation-free; it is never on a
//! hot path (test oracle only), which is also why the lint's hot-path
//! rule (D005) exempts it.

use std::collections::BTreeMap;

use crate::mode::LockMode;
use crate::table::{GranuleId, LockOutcome, TxnId};

/// Per-granule state: the granted group and the FIFO wait queue.
#[derive(Clone, Debug, Default)]
struct RefEntry {
    granted: Vec<(TxnId, LockMode)>,
    waiting: Vec<(TxnId, LockMode)>,
}

/// Reference lock table (see module docs). Same observable API surface
/// as [`crate::table::LockTable`], implemented over `BTreeMap`.
#[derive(Clone, Debug, Default)]
pub struct ReferenceLockTable {
    entries: BTreeMap<u64, RefEntry>,
    /// txn → held granules, in acquisition (append) order.
    holdings: BTreeMap<u64, Vec<u64>>,
    /// txn → granules the txn currently waits on.
    waited: BTreeMap<u64, Vec<u64>>,
    grants: u64,
    waits: u64,
}

impl ReferenceLockTable {
    /// An empty reference table.
    pub fn new() -> Self {
        Self::default()
    }

    fn holder_mode(entry: &RefEntry, txn: TxnId) -> Option<LockMode> {
        entry
            .granted
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|&(_, m)| m)
    }

    fn compatible_with_granted(entry: &RefEntry, txn: TxnId, mode: LockMode) -> bool {
        entry
            .granted
            .iter()
            .all(|&(t, held)| t == txn || mode.compatible(held))
    }

    fn collect_blockers(entry: &RefEntry, txn: TxnId, mode: LockMode, out: &mut Vec<TxnId>) {
        for &(t, held) in entry.granted.iter().chain(entry.waiting.iter()) {
            if t != txn && !mode.compatible(held) && !out.contains(&t) {
                out.push(t);
            }
        }
        // FIFO order alone can block: fall back to the queue head.
        if out.is_empty() {
            if let Some(&(t, _)) = entry.waiting.first() {
                out.push(t);
            }
        }
    }

    /// Request `granule` in `mode` for `txn`; same contract as
    /// [`crate::table::LockTable::lock`].
    pub fn lock(&mut self, txn: TxnId, granule: GranuleId, mode: LockMode) -> LockOutcome {
        let entry = self.entries.entry(granule.0).or_default();

        // Already waiting: merge into the queued waiter (or satisfy from
        // the held mode without touching the queue).
        if let Some(pos) = entry.waiting.iter().position(|(t, _)| *t == txn) {
            if Self::holder_mode(entry, txn).is_some_and(|held| held.supremum(mode) == held) {
                Self::gc(&mut self.entries, granule);
                return LockOutcome::Granted;
            }
            let merged = entry.waiting[pos].1.supremum(mode);
            entry.waiting[pos].1 = merged;
            self.waits += 1;
            let mut blockers = Vec::new();
            Self::collect_blockers(entry, txn, merged, &mut blockers);
            return LockOutcome::Queued { blockers };
        }

        if let Some(held) = Self::holder_mode(entry, txn) {
            // Upgrade path: jumps the queue but must respect other holders.
            let target = held.supremum(mode);
            if target == held {
                return LockOutcome::Granted;
            }
            if Self::compatible_with_granted(entry, txn, target) {
                for h in entry.granted.iter_mut().filter(|(t, _)| *t == txn) {
                    h.1 = target;
                }
                self.grants += 1;
                return LockOutcome::Granted;
            }
            let mut blockers = Vec::new();
            Self::collect_blockers(entry, txn, target, &mut blockers);
            entry.waiting.push((txn, target));
            self.waited.entry(txn.0).or_default().push(granule.0);
            self.waits += 1;
            return LockOutcome::Queued { blockers };
        }

        if entry.waiting.is_empty() && Self::compatible_with_granted(entry, txn, mode) {
            entry.granted.push((txn, mode));
            self.holdings.entry(txn.0).or_default().push(granule.0);
            self.grants += 1;
            LockOutcome::Granted
        } else {
            let mut blockers = Vec::new();
            Self::collect_blockers(entry, txn, mode, &mut blockers);
            entry.waiting.push((txn, mode));
            self.waited.entry(txn.0).or_default().push(granule.0);
            self.waits += 1;
            LockOutcome::Queued { blockers }
        }
    }

    /// Grant the longest compatible prefix of the wait queue; mirrors the
    /// production `promote`.
    fn promote(
        &mut self,
        granule: GranuleId,
        skip: Option<TxnId>,
        out: &mut Vec<(TxnId, LockMode)>,
    ) {
        loop {
            let Some(entry) = self.entries.get_mut(&granule.0) else {
                return;
            };
            let Some(&(txn, mode)) = entry.waiting.first() else {
                return;
            };
            if skip == Some(txn) {
                return;
            }
            if !Self::compatible_with_granted(entry, txn, mode) {
                return;
            }
            // lint:allow(P002): the oracle favours the most literal FIFO
            // expression over throughput; queues here are a handful deep
            entry.waiting.remove(0);
            // An upgrading waiter replaces its old granted entry; a fresh
            // waiter gains a holdings link.
            let before = entry.granted.len();
            entry.granted.retain(|(t, _)| *t != txn);
            let upgraded = entry.granted.len() != before;
            entry.granted.push((txn, mode));
            if !upgraded {
                self.holdings.entry(txn.0).or_default().push(granule.0);
            }
            if let Some(w) = self.waited.get_mut(&txn.0) {
                if let Some(pos) = w.iter().position(|&g| g == granule.0) {
                    w.remove(pos);
                }
                if w.is_empty() {
                    self.waited.remove(&txn.0);
                }
            }
            self.grants += 1;
            out.push((txn, mode));
        }
    }

    fn gc(entries: &mut BTreeMap<u64, RefEntry>, granule: GranuleId) {
        if entries
            .get(&granule.0)
            .is_some_and(|e| e.granted.is_empty() && e.waiting.is_empty())
        {
            entries.remove(&granule.0);
        }
    }

    /// Release `granule` for `txn`; same contract as
    /// [`crate::table::LockTable::unlock`].
    pub fn unlock(&mut self, txn: TxnId, granule: GranuleId) -> Vec<(TxnId, LockMode)> {
        let mut woken = Vec::new();
        let Some(entry) = self.entries.get_mut(&granule.0) else {
            return woken;
        };
        let before = entry.granted.len();
        entry.granted.retain(|(t, _)| *t != txn);
        if entry.granted.len() == before {
            Self::gc(&mut self.entries, granule);
            return woken;
        }
        if let Some(h) = self.holdings.get_mut(&txn.0) {
            if let Some(pos) = h.iter().position(|&g| g == granule.0) {
                h.remove(pos);
            }
            if h.is_empty() {
                self.holdings.remove(&txn.0);
            }
        }
        self.promote(granule, None, &mut woken);
        Self::gc(&mut self.entries, granule);
        woken
    }

    /// Release everything `txn` holds and cancel its queued waits; same
    /// contract as [`crate::table::LockTable::release_all`].
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, GranuleId, LockMode)> {
        let mut woken = Vec::new();
        // Phase 1: release holdings in append order, promoting after each
        // (the departing txn's own queued waiters stop promotion; they are
        // cancelled in phase 2, never self-granted).
        let held = self.holdings.remove(&txn.0).unwrap_or_default();
        for g in held {
            let granule = GranuleId(g);
            if let Some(entry) = self.entries.get_mut(&g) {
                entry.granted.retain(|(t, _)| *t != txn);
            }
            let mut promoted = Vec::new();
            self.promote(granule, Some(txn), &mut promoted);
            woken.extend(promoted.into_iter().map(|(t, m)| (t, granule, m)));
            Self::gc(&mut self.entries, granule);
        }
        // Phase 2: cancel queued waits in ascending granule order.
        let mut waits = self.waited.remove(&txn.0).unwrap_or_default();
        waits.sort_unstable();
        for g in waits {
            let granule = GranuleId(g);
            if let Some(entry) = self.entries.get_mut(&g) {
                entry.waiting.retain(|(t, _)| *t != txn);
            }
            let mut promoted = Vec::new();
            self.promote(granule, None, &mut promoted);
            woken.extend(promoted.into_iter().map(|(t, m)| (t, granule, m)));
            Self::gc(&mut self.entries, granule);
        }
        woken
    }

    /// Mode in which `txn` holds `granule`, if any.
    pub fn held_mode(&self, txn: TxnId, granule: GranuleId) -> Option<LockMode> {
        self.entries
            .get(&granule.0)
            .and_then(|e| Self::holder_mode(e, txn))
    }

    /// Granules currently held by `txn`, in acquisition (append) order.
    pub fn holdings(&self, txn: TxnId) -> Vec<GranuleId> {
        self.holdings
            .get(&txn.0)
            .map(|h| h.iter().map(|&g| GranuleId(g)).collect())
            .unwrap_or_default()
    }

    /// Number of granules with at least one holder or waiter.
    pub fn active_granules(&self) -> usize {
        self.entries.len()
    }

    /// Total grants performed (including upgrades and promotions).
    pub fn grant_count(&self) -> u64 {
        self.grants
    }

    /// Total requests that had to queue.
    pub fn wait_count(&self) -> u64 {
        self.waits
    }

    /// The transactions `txn` would wait on if it requested `granule` in
    /// `mode` now (empty if it would be granted).
    pub fn conflicts_with(&self, txn: TxnId, granule: GranuleId, mode: LockMode) -> Vec<TxnId> {
        let mut out = Vec::new();
        let Some(entry) = self.entries.get(&granule.0) else {
            return out;
        };
        if self.would_grant(txn, granule, mode) {
            return out;
        }
        Self::collect_blockers(entry, txn, mode, &mut out);
        out
    }

    /// Non-mutating conflict probe; same contract as
    /// [`crate::table::LockTable::would_grant`].
    pub fn would_grant(&self, txn: TxnId, granule: GranuleId, mode: LockMode) -> bool {
        match self.entries.get(&granule.0) {
            None => true,
            Some(entry) => {
                if let Some(held) = Self::holder_mode(entry, txn) {
                    let target = held.supremum(mode);
                    target == held || Self::compatible_with_granted(entry, txn, target)
                } else {
                    entry.waiting.is_empty() && Self::compatible_with_granted(entry, txn, mode)
                }
            }
        }
    }
}
