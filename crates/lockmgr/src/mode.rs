//! Lock modes and Gray's compatibility matrix.
//!
//! The five classical modes of Gray et al. (1976): shared (`S`),
//! exclusive (`X`), and the intention modes (`IS`, `IX`, `SIX`) used by
//! multi-granularity locking. The paper's simulation uses exclusive
//! granule locks only (every conflict blocks), but the lock-table
//! substrate implements the full matrix so the hierarchy extension and
//! read/write workloads are expressible.

use lockgran_sim::{FromJson, Json, ToJson};

/// A lock mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Intention shared: finer-grained S locks will be taken below.
    IS,
    /// Intention exclusive: finer-grained X locks will be taken below.
    IX,
    /// Shared: read the whole granule.
    S,
    /// Shared + intention exclusive: read the whole granule, write parts.
    SIX,
    /// Exclusive: read/write the whole granule.
    X,
}

impl LockMode {
    /// All modes, in escalation order.
    pub const ALL: [LockMode; 5] = [
        LockMode::IS,
        LockMode::IX,
        LockMode::S,
        LockMode::SIX,
        LockMode::X,
    ];

    /// Gray's compatibility matrix: can `self` be granted while `held` is
    /// held by a *different* transaction?
    pub fn compatible(self, held: LockMode) -> bool {
        use LockMode::*;
        match (self, held) {
            (IS, X) | (X, IS) => false,
            (IS, _) | (_, IS) => true,
            (IX, IX) => true,
            (IX, _) | (_, IX) => false,
            (S, S) => true,
            (S, _) | (_, S) => false,
            // Remaining: SIX and X against {SIX, X} — all conflict.
            _ => false,
        }
    }

    /// Least upper bound of two modes: the weakest single mode at least as
    /// strong as both (used for lock upgrades / re-requests).
    pub fn supremum(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self.min(other), self.max(other)) {
            (IS, IX) => IX,
            (IS, S) => S,
            (IS, SIX) | (IX, S) | (IX, SIX) | (S, SIX) => SIX,
            (_, X) => X,
            _ => unreachable!("min/max covered all distinct pairs"),
        }
    }

    /// True if this mode permits modifying (part of) the granule.
    pub fn is_write_intent(self) -> bool {
        matches!(self, LockMode::IX | LockMode::SIX | LockMode::X)
    }

    /// The intention mode required on an *ancestor* before taking `self`
    /// on a descendant (Gray's protocol): `IS` for read-side modes, `IX`
    /// for write-side modes.
    pub fn required_ancestor_intent(self) -> LockMode {
        if self.is_write_intent() {
            LockMode::IX
        } else {
            LockMode::IS
        }
    }
}

impl ToJson for LockMode {
    /// Variant-name string, like the previous serde derive: `"SIX"`.
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

// lint:covers(LockMode): the string match below mirrors the enum
impl FromJson for LockMode {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("IS") => Ok(LockMode::IS),
            Some("IX") => Ok(LockMode::IX),
            Some("S") => Ok(LockMode::S),
            Some("SIX") => Ok(LockMode::SIX),
            Some("X") => Ok(LockMode::X),
            _ => Err(format!("expected lock mode (IS|IX|S|SIX|X), got {v}")),
        }
    }
}

impl std::fmt::Display for LockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LockMode::IS => "IS",
            LockMode::IX => "IX",
            LockMode::S => "S",
            LockMode::SIX => "SIX",
            LockMode::X => "X",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    /// The canonical matrix from Gray et al. (1976), row = requested,
    /// column = held, order IS, IX, S, SIX, X.
    const MATRIX: [[bool; 5]; 5] = [
        [true, true, true, true, false],     // IS
        [true, true, false, false, false],   // IX
        [true, false, true, false, false],   // S
        [true, false, false, false, false],  // SIX
        [false, false, false, false, false], // X
    ];

    #[test]
    fn compatibility_matches_grays_matrix() {
        for (i, &a) in LockMode::ALL.iter().enumerate() {
            for (j, &b) in LockMode::ALL.iter().enumerate() {
                assert_eq!(
                    a.compatible(b),
                    MATRIX[i][j],
                    "compat({a}, {b}) disagrees with Gray's matrix"
                );
            }
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for &a in &LockMode::ALL {
            for &b in &LockMode::ALL {
                assert_eq!(a.compatible(b), b.compatible(a), "asymmetry at ({a}, {b})");
            }
        }
    }

    #[test]
    fn x_conflicts_with_everything() {
        for &m in &LockMode::ALL {
            assert!(!X.compatible(m));
        }
    }

    #[test]
    fn supremum_is_commutative_idempotent_and_dominating() {
        for &a in &LockMode::ALL {
            assert_eq!(a.supremum(a), a);
            for &b in &LockMode::ALL {
                let s = a.supremum(b);
                assert_eq!(s, b.supremum(a), "supremum not commutative at ({a}, {b})");
                // The supremum conflicts with at least everything a and b
                // conflict with.
                for &c in &LockMode::ALL {
                    if !a.compatible(c) || !b.compatible(c) {
                        assert!(
                            !s.compatible(c),
                            "sup({a},{b})={s} is compatible with {c} but one input is not"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn specific_suprema() {
        assert_eq!(S.supremum(IX), SIX);
        assert_eq!(IS.supremum(IX), IX);
        assert_eq!(S.supremum(X), X);
        assert_eq!(SIX.supremum(IX), SIX);
    }

    #[test]
    fn ancestor_intents() {
        assert_eq!(S.required_ancestor_intent(), IS);
        assert_eq!(IS.required_ancestor_intent(), IS);
        assert_eq!(X.required_ancestor_intent(), IX);
        assert_eq!(IX.required_ancestor_intent(), IX);
        assert_eq!(SIX.required_ancestor_intent(), IX);
    }
}
