//! Conservative (static) locking — the protocol the paper simulates.
//!
//! "Transactions request all needed locks before using the I/O and CPU
//! resources. Thus deadlock is impossible." (paper §2). A transaction
//! presents its complete lock set; either every lock is granted
//! atomically, or none is and the transaction blocks on the first
//! conflicting holder. When a transaction finishes it releases everything,
//! and every blocked transaction whose conflict involved it is woken to
//! retry — exactly the paper's "a completed transaction releases all its
//! locks and those transactions blocked by it".
//!
//! Retries are all-or-nothing as well, so the scheduler never holds a
//! partial lock set and the no-deadlock guarantee is preserved.
//!
//! The blocked/blocks indexes live in [`DetMap`]s and every per-request
//! buffer is pooled, so the steady-state request/release cycle allocates
//! nothing (the paper's sweeps hammer this path at every granularity).

use lockgran_sim::DetMap;

use crate::mode::LockMode;
use crate::table::{GranuleId, LockTable, TxnId};

/// Outcome of an all-at-once lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConservativeOutcome {
    /// Every lock in the set is now held.
    Granted,
    /// Nothing is held; the transaction is recorded as blocked by
    /// `blocker` and will be returned by [`ConservativeScheduler::release`]
    /// when `blocker` releases (to be retried by the caller).
    Blocked {
        /// The first conflicting lock holder, in granule order.
        blocker: TxnId,
    },
}

/// All-or-nothing lock acquisition over a [`LockTable`].
#[derive(Default, Debug)]
pub struct ConservativeScheduler {
    table: LockTable,
    /// Blocked transaction → the holder it waits for.
    blocked: DetMap<TxnId>,
    /// Reverse index: holder → transactions blocked on it (FIFO).
    blocks: DetMap<Vec<TxnId>>,
    /// Spare wake lists recycled through `blocks` (alloc-free steady state).
    spare_lists: Vec<Vec<TxnId>>,
    /// Scratch: merged request set for the current `request_all`.
    merge_scratch: Vec<(GranuleId, LockMode)>,
    /// Scratch: sorted copy of the caller's request set.
    sort_scratch: Vec<(GranuleId, LockMode)>,
    /// Scratch: blocker sink for the acquire phase.
    blocker_scratch: Vec<TxnId>,
    /// Scratch: promotion sink for release (asserted empty).
    promote_scratch: Vec<(TxnId, GranuleId, LockMode)>,
}

impl ConservativeScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all scheduler and table state but keep every allocation
    /// (reset-equals-fresh).
    pub fn reset(&mut self) {
        self.table.reset();
        self.blocked.clear();
        // Recycle the wake lists still parked in the index.
        let mut keys_done = false;
        while !keys_done {
            let key = self.blocks.iter().next().map(|(k, _)| k);
            match key {
                Some(k) => {
                    if let Some(mut v) = self.blocks.remove(k) {
                        v.clear();
                        self.spare_lists.push(v);
                    }
                }
                None => keys_done = true,
            }
        }
        self.merge_scratch.clear();
        self.sort_scratch.clear();
        self.blocker_scratch.clear();
        self.promote_scratch.clear();
    }

    /// Atomically request the full lock set for `txn`. The set must be
    /// duplicate-free per granule (duplicates are merged by supremum).
    ///
    /// On conflict nothing is acquired and `txn` is recorded as blocked by
    /// the first conflicting holder (deterministic: smallest granule id
    /// first, grant-group order within it).
    ///
    /// # Panics
    /// Panics if `txn` already holds locks or is already blocked —
    /// conservative transactions declare their set exactly once per
    /// attempt.
    pub fn request_all(
        &mut self,
        txn: TxnId,
        locks: &[(GranuleId, LockMode)],
    ) -> ConservativeOutcome {
        assert!(
            self.table.holdings(txn).next().is_none(),
            "{txn:?} already holds locks"
        );
        assert!(
            !self.blocked.contains_key(txn.0),
            "{txn:?} is already blocked"
        );

        // Merge duplicates deterministically, in pooled scratch buffers.
        let mut sorted = std::mem::take(&mut self.sort_scratch);
        sorted.clear();
        sorted.extend_from_slice(locks);
        sorted.sort_by_key(|(g, _)| *g);
        let mut merged = std::mem::take(&mut self.merge_scratch);
        merged.clear();
        for (g, m) in sorted.iter().copied() {
            match merged.last_mut() {
                Some((lg, lm)) if *lg == g => *lm = lm.supremum(m),
                _ => merged.push((g, m)),
            }
        }
        self.sort_scratch = sorted;

        // Probe phase: find the first conflict without acquiring anything.
        for (g, m) in &merged {
            if let Some(blocker) = self.table.first_conflict(txn, *g, *m) {
                self.blocked.insert(txn.0, blocker);
                let list = self.blocks.get_or_insert_with(blocker.0, Vec::new);
                if list.capacity() == 0 {
                    if let Some(spare) = self.spare_lists.pop() {
                        *list = spare;
                    }
                }
                list.push(txn);
                self.merge_scratch = merged;
                return ConservativeOutcome::Blocked { blocker };
            }
        }

        // Acquire phase: by construction every request is grantable, and
        // single-threaded use means nothing changed since the probe.
        let mut blockers = std::mem::take(&mut self.blocker_scratch);
        for (g, m) in &merged {
            let granted = self.table.lock_into(txn, *g, *m, &mut blockers);
            debug_assert!(granted, "probe said grantable but lock queued");
        }
        self.blocker_scratch = blockers;
        self.merge_scratch = merged;
        ConservativeOutcome::Granted
    }

    /// Release everything `txn` holds and return the transactions that
    /// were blocked on it (allocating wrapper around
    /// [`ConservativeScheduler::release_into`]).
    pub fn release(&mut self, txn: TxnId) -> Vec<TxnId> {
        let mut woken = Vec::new();
        self.release_into(txn, &mut woken);
        woken
    }

    /// Release everything `txn` holds and append the transactions that
    /// were blocked on it to `woken` (cleared first), in the order they
    /// blocked. The caller re-issues
    /// [`ConservativeScheduler::request_all`] for each (they may block
    /// again, possibly on a different holder).
    pub fn release_into(&mut self, txn: TxnId, woken: &mut Vec<TxnId>) {
        woken.clear();
        let mut promoted = std::mem::take(&mut self.promote_scratch);
        self.table.release_all_into(txn, &mut promoted);
        debug_assert!(
            promoted.is_empty(),
            "conservative scheduler never leaves waiters inside the table"
        );
        promoted.clear();
        self.promote_scratch = promoted;
        if let Some(mut list) = self.blocks.remove(txn.0) {
            woken.extend_from_slice(&list);
            list.clear();
            self.spare_lists.push(list);
        }
        for t in woken.iter() {
            let removed = self.blocked.remove(t.0);
            debug_assert_eq!(removed, Some(txn));
        }
    }

    /// The holder `txn` is currently blocked on, if any.
    pub fn blocked_on(&self, txn: TxnId) -> Option<TxnId> {
        self.blocked.get(txn.0).copied()
    }

    /// Number of currently blocked transactions.
    pub fn blocked_count(&self) -> usize {
        self.blocked.len()
    }

    /// Granules currently held by `txn`, in acquisition order.
    pub fn holdings(&self, txn: TxnId) -> impl Iterator<Item = GranuleId> + '_ {
        self.table.holdings(txn)
    }

    /// Access the underlying table (diagnostics, invariant checks).
    pub fn table(&self) -> &LockTable {
        &self.table
    }

    /// Check scheduler + table invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.table.check_invariants()?;
        for (waiter, holder) in self.blocked.iter() {
            let waiter = TxnId(waiter);
            if !self
                .blocks
                .get(holder.0)
                .is_some_and(|v| v.contains(&waiter))
            {
                return Err(format!("{waiter:?} blocked on {holder:?} but not indexed"));
            }
            if self.table.holdings(waiter).next().is_some() {
                return Err(format!("blocked {waiter:?} holds locks"));
            }
        }
        for (holder, waiters) in self.blocks.iter() {
            let holder = TxnId(holder);
            for w in waiters {
                if self.blocked.get(w.0) != Some(&holder) {
                    return Err(format!("index lists {w:?} under {holder:?} spuriously"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::X;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }
    fn g(n: u64) -> GranuleId {
        GranuleId(n)
    }
    fn xs(ids: &[u64]) -> Vec<(GranuleId, LockMode)> {
        ids.iter().map(|&i| (g(i), X)).collect()
    }

    #[test]
    fn disjoint_sets_run_concurrently() {
        let mut s = ConservativeScheduler::new();
        assert_eq!(
            s.request_all(t(1), &xs(&[0, 1, 2])),
            ConservativeOutcome::Granted
        );
        assert_eq!(
            s.request_all(t(2), &xs(&[3, 4])),
            ConservativeOutcome::Granted
        );
        s.check_invariants().unwrap();
    }

    #[test]
    fn overlap_blocks_all_or_nothing() {
        let mut s = ConservativeScheduler::new();
        assert_eq!(
            s.request_all(t(1), &xs(&[0, 1, 2])),
            ConservativeOutcome::Granted
        );
        let out = s.request_all(t(2), &xs(&[2, 3, 4]));
        assert_eq!(out, ConservativeOutcome::Blocked { blocker: t(1) });
        // Nothing partial: granules 3 and 4 are still free for others.
        assert_eq!(
            s.request_all(t(3), &xs(&[3, 4])),
            ConservativeOutcome::Granted
        );
        s.check_invariants().unwrap();
    }

    #[test]
    fn release_wakes_blocked_in_fifo_order() {
        let mut s = ConservativeScheduler::new();
        assert_eq!(s.request_all(t(1), &xs(&[0])), ConservativeOutcome::Granted);
        assert!(matches!(
            s.request_all(t(2), &xs(&[0])),
            ConservativeOutcome::Blocked { .. }
        ));
        assert!(matches!(
            s.request_all(t(3), &xs(&[0])),
            ConservativeOutcome::Blocked { .. }
        ));
        let woken = s.release(t(1));
        assert_eq!(woken, vec![t(2), t(3)]);
        assert_eq!(s.blocked_count(), 0);
        // First retry wins; second blocks again, now on t2.
        assert_eq!(s.request_all(t(2), &xs(&[0])), ConservativeOutcome::Granted);
        assert_eq!(
            s.request_all(t(3), &xs(&[0])),
            ConservativeOutcome::Blocked { blocker: t(2) }
        );
        s.check_invariants().unwrap();
    }

    #[test]
    fn no_deadlock_under_conservative_protocol() {
        // The classic 2PL deadlock: t1 wants {0,1}, t2 wants {1,0}.
        // Conservatively, whoever asks second simply blocks; no cycle.
        let mut s = ConservativeScheduler::new();
        assert_eq!(
            s.request_all(t(1), &xs(&[0, 1])),
            ConservativeOutcome::Granted
        );
        assert_eq!(
            s.request_all(t(2), &xs(&[1, 0])),
            ConservativeOutcome::Blocked { blocker: t(1) }
        );
        let woken = s.release(t(1));
        assert_eq!(woken, vec![t(2)]);
        assert_eq!(
            s.request_all(t(2), &xs(&[1, 0])),
            ConservativeOutcome::Granted
        );
    }

    #[test]
    fn duplicate_granules_in_request_are_merged() {
        let mut s = ConservativeScheduler::new();
        let locks = vec![(g(0), LockMode::S), (g(0), LockMode::X), (g(1), X)];
        assert_eq!(s.request_all(t(1), &locks), ConservativeOutcome::Granted);
        assert_eq!(s.table().held_mode(t(1), g(0)), Some(X));
        s.check_invariants().unwrap();
    }

    #[test]
    fn blocker_is_deterministic_lowest_granule() {
        let mut s = ConservativeScheduler::new();
        assert_eq!(s.request_all(t(1), &xs(&[5])), ConservativeOutcome::Granted);
        assert_eq!(s.request_all(t(2), &xs(&[9])), ConservativeOutcome::Granted);
        // t3 conflicts on both 5 and 9; must block on the holder of 5.
        assert_eq!(
            s.request_all(t(3), &xs(&[9, 5])),
            ConservativeOutcome::Blocked { blocker: t(1) }
        );
    }

    #[test]
    fn shared_sets_do_not_block_each_other() {
        let mut s = ConservativeScheduler::new();
        let reads: Vec<(GranuleId, LockMode)> = (0..5).map(|i| (g(i), LockMode::S)).collect();
        assert_eq!(s.request_all(t(1), &reads), ConservativeOutcome::Granted);
        assert_eq!(s.request_all(t(2), &reads), ConservativeOutcome::Granted);
        // A writer on any of them blocks.
        assert!(matches!(
            s.request_all(t(3), &xs(&[2])),
            ConservativeOutcome::Blocked { .. }
        ));
        s.check_invariants().unwrap();
    }

    #[test]
    fn empty_lock_set_is_trivially_granted() {
        let mut s = ConservativeScheduler::new();
        assert_eq!(s.request_all(t(1), &[]), ConservativeOutcome::Granted);
        assert!(s.release(t(1)).is_empty());
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let mut s = ConservativeScheduler::new();
        s.request_all(t(1), &xs(&[0, 1]));
        assert!(matches!(
            s.request_all(t(2), &xs(&[1])),
            ConservativeOutcome::Blocked { .. }
        ));
        s.reset();
        assert_eq!(s.blocked_count(), 0);
        assert_eq!(s.request_all(t(2), &xs(&[1])), ConservativeOutcome::Granted);
        s.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "already holds locks")]
    fn double_request_panics() {
        let mut s = ConservativeScheduler::new();
        s.request_all(t(1), &xs(&[0]));
        s.request_all(t(1), &xs(&[1]));
    }
}
