//! Multi-granularity (hierarchical) locking.
//!
//! The paper's conclusion points at Gamma-style mixed granularity:
//! "providing granularity at the block level and at the file level … may
//! be adequate for practical purposes". This module implements Gray's
//! multi-granularity protocol over a uniform granule tree
//! (database → file → block → record or any subset of levels): to lock a
//! node in mode `M`, a transaction first holds the matching intention mode
//! (`IS` for reads, `IX` for writes) on every ancestor, root first.
//!
//! The tree is *implicit*: levels have fixed fan-outs, node ids are
//! computed arithmetically, and ancestor chains never allocate. A node id
//! is globally unique across levels so a single flat [`LockTable`] stores
//! the whole hierarchy.

use lockgran_sim::{FromJson, Json, ToJson};

use crate::mode::LockMode;
use crate::table::{GranuleId, LockOutcome, LockTable, TxnId};

/// A level in the granule hierarchy, 0 = root (whole database).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HierarchyLevel(pub usize);

impl ToJson for HierarchyLevel {
    /// Bare integer, like the previous serde newtype derive: `2`.
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for HierarchyLevel {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(HierarchyLevel(usize::from_json(v)?))
    }
}

/// A node in the granule tree: `(level, index within level)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeId {
    /// Depth, 0 = root.
    pub level: HierarchyLevel,
    /// 0-based index among nodes of this level.
    pub index: u64,
}

/// An implicit granule tree with fixed per-level fan-outs.
///
/// `fanouts[k]` is the number of children each level-`k` node has; a tree
/// with `fanouts = [10, 50]` has 1 root, 10 files, 500 blocks.
#[derive(Clone, Debug)]
pub struct GranuleTree {
    fanouts: Vec<u64>,
    /// `level_sizes[k]` = number of nodes at level `k`.
    level_sizes: Vec<u64>,
    /// `level_offsets[k]` = flat id of the first node at level `k`.
    level_offsets: Vec<u64>,
}

impl ToJson for GranuleTree {
    /// All three fields, like the previous serde struct derive.
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("fanouts", self.fanouts.to_json()),
            ("level_sizes", self.level_sizes.to_json()),
            ("level_offsets", self.level_offsets.to_json()),
        ])
    }
}

// lint:allow(J001): `level_sizes`/`level_offsets` are derived — emitted
// for readability, deliberately recomputed from `fanouts` on read so a
// hand-edited file cannot smuggle in an inconsistent tree
impl FromJson for GranuleTree {
    fn from_json(v: &Json) -> Result<Self, String> {
        let fanouts: Vec<u64> = v.field("fanouts")?;
        if fanouts.contains(&0) {
            return Err("fan-outs must be positive".into());
        }
        // Derived fields are recomputed rather than trusted, so a
        // hand-edited file cannot produce an inconsistent tree.
        Ok(GranuleTree::new(&fanouts))
    }
}

impl GranuleTree {
    /// Build a tree from per-level fan-outs (root excluded; an empty slice
    /// yields a single-node tree — whole-database locking).
    ///
    /// # Panics
    /// Panics if any fan-out is zero.
    pub fn new(fanouts: &[u64]) -> Self {
        assert!(fanouts.iter().all(|&f| f > 0), "fan-outs must be positive");
        let mut level_sizes = vec![1u64];
        let mut last = 1u64;
        for &f in fanouts {
            last *= f;
            level_sizes.push(last);
        }
        let mut level_offsets = Vec::with_capacity(level_sizes.len());
        let mut acc = 0;
        for &s in &level_sizes {
            level_offsets.push(acc);
            acc += s;
        }
        GranuleTree {
            fanouts: fanouts.to_vec(),
            level_sizes,
            level_offsets,
        }
    }

    /// Number of levels (≥ 1; level 0 is the root).
    pub fn levels(&self) -> usize {
        self.level_sizes.len()
    }

    /// Number of nodes at `level`.
    pub fn level_size(&self, level: HierarchyLevel) -> u64 {
        self.level_sizes[level.0]
    }

    /// Total nodes in the tree.
    pub fn total_nodes(&self) -> u64 {
        self.level_sizes.iter().sum()
    }

    /// Leaf level (finest granularity).
    pub fn leaf_level(&self) -> HierarchyLevel {
        HierarchyLevel(self.levels() - 1)
    }

    /// Flat, globally unique granule id for a node.
    ///
    /// # Panics
    /// Panics if the node is out of range.
    pub fn flat_id(&self, node: NodeId) -> GranuleId {
        assert!(node.level.0 < self.levels(), "level out of range");
        assert!(
            node.index < self.level_sizes[node.level.0],
            "index {} out of range for level {}",
            node.index,
            node.level.0
        );
        GranuleId(self.level_offsets[node.level.0] + node.index)
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        if node.level.0 == 0 {
            return None;
        }
        Some(NodeId {
            level: HierarchyLevel(node.level.0 - 1),
            index: node.index / self.fanouts[node.level.0 - 1],
        })
    }

    /// Ancestors of a node, root first (excluding the node itself).
    pub fn ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut chain = Vec::with_capacity(node.level.0);
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Lock `node` in `mode` for `txn`, taking the required intention
    /// locks on all ancestors (root first) beforehand.
    ///
    /// All-or-nothing: if any lock on the path conflicts, every lock
    /// acquired by *this call* is rolled back and the blockers are
    /// returned. (Locks the transaction already held are untouched.)
    pub fn lock_hierarchical(
        &self,
        table: &mut LockTable,
        txn: TxnId,
        node: NodeId,
        mode: LockMode,
    ) -> Result<(), Vec<TxnId>> {
        let intent = mode.required_ancestor_intent();
        let mut path: Vec<(GranuleId, LockMode)> = self
            .ancestors(node)
            .into_iter()
            .map(|a| (self.flat_id(a), intent))
            .collect();
        path.push((self.flat_id(node), mode));

        let mut acquired: Vec<(GranuleId, Option<LockMode>)> = Vec::new();
        for (g, m) in &path {
            let prior = table.held_mode(txn, *g);
            // Probe first so a conflict leaves no queued request behind.
            if !table.would_grant(txn, *g, *m) {
                let blockers = table.conflicts_with(txn, *g, *m);
                // Roll back everything acquired by this call.
                for (g, prior) in acquired.into_iter().rev() {
                    match prior {
                        None => {
                            table.unlock(txn, g);
                        }
                        Some(_) => {
                            // Downgrade is not supported by the flat table;
                            // holding the stronger mode is safe (it only
                            // over-locks), so leave it.
                        }
                    }
                }
                return Err(blockers);
            }
            let out = table.lock(txn, *g, *m);
            debug_assert_eq!(out, LockOutcome::Granted);
            if prior.is_none() || prior != table.held_mode(txn, *g) {
                acquired.push((*g, prior));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{IS, IX, S, X};

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    fn node(level: usize, index: u64) -> NodeId {
        NodeId {
            level: HierarchyLevel(level),
            index,
        }
    }

    /// database -> 10 files -> 50 blocks each = 500 blocks.
    fn tree() -> GranuleTree {
        GranuleTree::new(&[10, 50])
    }

    #[test]
    fn geometry() {
        let tr = tree();
        assert_eq!(tr.levels(), 3);
        assert_eq!(tr.level_size(HierarchyLevel(0)), 1);
        assert_eq!(tr.level_size(HierarchyLevel(1)), 10);
        assert_eq!(tr.level_size(HierarchyLevel(2)), 500);
        assert_eq!(tr.total_nodes(), 511);
        assert_eq!(tr.leaf_level(), HierarchyLevel(2));
    }

    #[test]
    fn flat_ids_are_unique_across_levels() {
        let tr = tree();
        let mut seen = std::collections::BTreeSet::new();
        for level in 0..tr.levels() {
            for index in 0..tr.level_size(HierarchyLevel(level)) {
                assert!(seen.insert(tr.flat_id(node(level, index))), "collision");
            }
        }
        assert_eq!(seen.len() as u64, tr.total_nodes());
    }

    #[test]
    fn parent_chain() {
        let tr = tree();
        // Block 123 belongs to file 123 / 50 = 2; file 2's parent is root.
        let b = node(2, 123);
        assert_eq!(tr.parent(b), Some(node(1, 2)));
        assert_eq!(tr.parent(node(1, 2)), Some(node(0, 0)));
        assert_eq!(tr.parent(node(0, 0)), None);
        assert_eq!(tr.ancestors(b), vec![node(0, 0), node(1, 2)]);
    }

    #[test]
    fn read_and_write_different_files_coexist() {
        let tr = tree();
        let mut lt = LockTable::new();
        // t1 writes a block in file 0; t2 reads a block in file 3.
        tr.lock_hierarchical(&mut lt, t(1), node(2, 5), X).unwrap();
        tr.lock_hierarchical(&mut lt, t(2), node(2, 170), S)
            .unwrap();
        // Root carries IX (t1) + IS (t2): compatible.
        assert_eq!(lt.held_mode(t(1), tr.flat_id(node(0, 0))), Some(IX));
        assert_eq!(lt.held_mode(t(2), tr.flat_id(node(0, 0))), Some(IS));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn file_lock_blocks_block_write_within_it() {
        let tr = tree();
        let mut lt = LockTable::new();
        // t1 S-locks file 2 (covers blocks 100..149).
        tr.lock_hierarchical(&mut lt, t(1), node(1, 2), S).unwrap();
        // t2 writing block 120 needs IX on file 2 -> conflicts with S.
        let err = tr
            .lock_hierarchical(&mut lt, t(2), node(2, 120), X)
            .unwrap_err();
        assert_eq!(err, vec![t(1)]);
        // Roll-back check: t2 holds nothing.
        assert!(lt.holdings(t(2)).next().is_none());
        lt.check_invariants().unwrap();
    }

    #[test]
    fn block_write_blocks_covering_file_read() {
        let tr = tree();
        let mut lt = LockTable::new();
        tr.lock_hierarchical(&mut lt, t(1), node(2, 120), X)
            .unwrap();
        // t2 reading all of file 2 needs S on file 2, which conflicts with
        // t1's IX there.
        let err = tr
            .lock_hierarchical(&mut lt, t(2), node(1, 2), S)
            .unwrap_err();
        assert_eq!(err, vec![t(1)]);
        // But reading a *different* file is fine.
        tr.lock_hierarchical(&mut lt, t(2), node(1, 3), S).unwrap();
        lt.check_invariants().unwrap();
    }

    #[test]
    fn failed_lock_preserves_prior_holdings() {
        let tr = tree();
        let mut lt = LockTable::new();
        // t2 already reads file 3.
        tr.lock_hierarchical(&mut lt, t(2), node(1, 3), S).unwrap();
        let before = lt.holdings(t(2)).count();
        // t1 X-locks the whole database; t2's next request fails...
        tr.lock_hierarchical(&mut lt, t(1), node(1, 5), X).unwrap();
        let err = tr.lock_hierarchical(&mut lt, t(2), node(1, 5), S);
        assert!(err.is_err());
        // ...but its earlier locks are intact.
        assert_eq!(lt.holdings(t(2)).count(), before);
        assert_eq!(lt.held_mode(t(2), tr.flat_id(node(1, 3))), Some(S));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn single_level_tree_degenerates_to_flat_locking() {
        let tr = GranuleTree::new(&[]);
        let mut lt = LockTable::new();
        tr.lock_hierarchical(&mut lt, t(1), node(0, 0), X).unwrap();
        let err = tr
            .lock_hierarchical(&mut lt, t(2), node(0, 0), S)
            .unwrap_err();
        assert_eq!(err, vec![t(1)]);
    }

    #[test]
    fn repeated_lock_by_same_txn_is_idempotent() {
        let tr = tree();
        let mut lt = LockTable::new();
        tr.lock_hierarchical(&mut lt, t(1), node(2, 7), X).unwrap();
        tr.lock_hierarchical(&mut lt, t(1), node(2, 7), X).unwrap();
        tr.lock_hierarchical(&mut lt, t(1), node(2, 8), X).unwrap();
        lt.check_invariants().unwrap();
    }
}
