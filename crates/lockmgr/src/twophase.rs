//! Incremental two-phase locking with deadlock detection (extension).
//!
//! The paper restricts itself to conservative locking (and cites Ries &
//! Stonebraker's finding that "claim as needed" did not change the
//! conclusions). This module implements the claim-as-needed protocol so
//! that claim can be re-examined: locks are acquired one at a time as the
//! transaction touches granules, conflicts enqueue in the lock table, a
//! waits-for graph is maintained, and any cycle is broken by aborting the
//! **youngest** transaction on it (fewest locks invested is a common
//! alternative; youngest-aborts gives deterministic, starvation-resistant
//! behaviour with monotone transaction ids).

use std::collections::BTreeMap;

use crate::deadlock::WaitsForGraph;
use crate::mode::LockMode;
use crate::table::{GranuleId, LockOutcome, LockTable, TxnId};

/// Outcome of an incremental lock acquisition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Lock held; proceed.
    Granted,
    /// Queued behind the returned blockers; the transaction must wait for
    /// a [`TwoPhaseScheduler::release`] that grants it.
    Waiting {
        /// Transactions waited on.
        blockers: Vec<TxnId>,
    },
    /// Granting would deadlock; `victim` was chosen and forcibly aborted
    /// (all its locks released, its waits cancelled). If the victim is the
    /// requester itself the caller must restart it; otherwise the request
    /// is re-evaluated and this variant reports the post-abort outcome in
    /// `retry`.
    Deadlock {
        /// The aborted transaction (youngest on the cycle).
        victim: TxnId,
        /// Transactions granted locks as a side effect of the abort.
        granted: Vec<TxnId>,
    },
}

/// Claim-as-needed two-phase locking scheduler.
#[derive(Default, Debug)]
pub struct TwoPhaseScheduler {
    table: LockTable,
    graph: WaitsForGraph,
    /// Requests currently queued in the table: txn → (granule, mode).
    waiting: BTreeMap<TxnId, (GranuleId, LockMode)>,
    aborts: u64,
}

impl TwoPhaseScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire one lock for `txn`. If a deadlock would result, the
    /// youngest (largest-id) transaction on the cycle is aborted.
    ///
    /// # Panics
    /// Panics if `txn` is already waiting for a lock (a transaction is a
    /// single thread of control: it cannot issue a second request while
    /// blocked).
    pub fn acquire(&mut self, txn: TxnId, granule: GranuleId, mode: LockMode) -> AcquireOutcome {
        assert!(
            !self.waiting.contains_key(&txn),
            "{txn:?} issued a request while already waiting"
        );
        match self.table.lock(txn, granule, mode) {
            LockOutcome::Granted => AcquireOutcome::Granted,
            LockOutcome::Queued { blockers } => {
                self.waiting.insert(txn, (granule, mode));
                for b in &blockers {
                    self.graph.add_edge(txn, *b);
                }
                if let Some(cycle) = self.graph.find_cycle_from(txn) {
                    let victim = *cycle
                        .iter()
                        .max()
                        // lint:allow(P001): find_cycle_from never returns an
                        // empty cycle
                        .expect("cycle is non-empty");
                    let granted = self.abort(victim);
                    self.aborts += 1;
                    AcquireOutcome::Deadlock { victim, granted }
                } else {
                    AcquireOutcome::Waiting { blockers }
                }
            }
        }
    }

    /// Abort `victim`: drop its locks and queued request, grant whatever
    /// becomes available. Returns the transactions granted as a result.
    pub fn abort(&mut self, victim: TxnId) -> Vec<TxnId> {
        self.waiting.remove(&victim);
        self.graph.remove_txn(victim);
        let promoted = self.table.release_all(victim);
        self.note_grants(&promoted)
    }

    /// Commit `txn`: release all its locks. Returns the transactions
    /// granted as a result (their `acquire` has now succeeded; callers
    /// resume them).
    pub fn release(&mut self, txn: TxnId) -> Vec<TxnId> {
        debug_assert!(
            !self.waiting.contains_key(&txn),
            "{txn:?} released while waiting"
        );
        self.graph.remove_txn(txn);
        let promoted = self.table.release_all(txn);
        self.note_grants(&promoted)
    }

    fn note_grants(&mut self, promoted: &[(TxnId, GranuleId, LockMode)]) -> Vec<TxnId> {
        let mut granted = Vec::new();
        for (t, g, m) in promoted {
            if let Some(&(wg, wm)) = self.waiting.get(t) {
                debug_assert_eq!((wg, wm.supremum(*m)), (*g, wm.supremum(*m)));
                self.waiting.remove(t);
                self.graph.remove_txn(*t);
                granted.push(*t);
            }
        }
        granted
    }

    /// Is `txn` currently queued for a lock?
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.waiting.contains_key(&txn)
    }

    /// Total deadlock aborts performed.
    pub fn abort_count(&self) -> u64 {
        self.aborts
    }

    /// Access the underlying lock table.
    pub fn table(&self) -> &LockTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{S, X};

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }
    fn g(n: u64) -> GranuleId {
        GranuleId(n)
    }

    #[test]
    fn grant_wait_release_cycle() {
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), X), AcquireOutcome::Granted);
        let out = s.acquire(t(2), g(0), X);
        assert_eq!(
            out,
            AcquireOutcome::Waiting {
                blockers: vec![t(1)]
            }
        );
        assert!(s.is_waiting(t(2)));
        let granted = s.release(t(1));
        assert_eq!(granted, vec![t(2)]);
        assert!(!s.is_waiting(t(2)));
        assert_eq!(s.table().held_mode(t(2), g(0)), Some(X));
    }

    #[test]
    fn classic_two_transaction_deadlock_aborts_youngest() {
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), X), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(2), g(1), X), AcquireOutcome::Granted);
        assert!(matches!(
            s.acquire(t(1), g(1), X),
            AcquireOutcome::Waiting { .. }
        ));
        // t2 closing the cycle: youngest (t2) is the victim.
        match s.acquire(t(2), g(0), X) {
            AcquireOutcome::Deadlock { victim, granted } => {
                assert_eq!(victim, t(2));
                // Aborting t2 frees g1, granting t1's queued request.
                assert_eq!(granted, vec![t(1)]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert_eq!(s.abort_count(), 1);
        assert_eq!(s.table().held_mode(t(1), g(1)), Some(X));
        assert!(s.table().holdings(t(2)).is_empty());
    }

    #[test]
    fn three_way_deadlock_detected() {
        let mut s = TwoPhaseScheduler::new();
        for i in 0..3u64 {
            assert_eq!(s.acquire(t(i + 1), g(i), X), AcquireOutcome::Granted);
        }
        assert!(matches!(
            s.acquire(t(1), g(1), X),
            AcquireOutcome::Waiting { .. }
        ));
        assert!(matches!(
            s.acquire(t(2), g(2), X),
            AcquireOutcome::Waiting { .. }
        ));
        match s.acquire(t(3), g(0), X) {
            AcquireOutcome::Deadlock { victim, .. } => assert_eq!(victim, t(3)),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn readers_do_not_deadlock() {
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), S), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(2), g(1), S), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(1), g(1), S), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(2), g(0), S), AcquireOutcome::Granted);
        assert_eq!(s.abort_count(), 0);
    }

    #[test]
    fn upgrade_deadlock_is_broken() {
        // Both read the same granule, both try to upgrade: a classic
        // conversion deadlock.
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), S), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(2), g(0), S), AcquireOutcome::Granted);
        assert!(matches!(
            s.acquire(t(1), g(0), X),
            AcquireOutcome::Waiting { .. }
        ));
        match s.acquire(t(2), g(0), X) {
            AcquireOutcome::Deadlock { victim, granted } => {
                assert_eq!(victim, t(2));
                assert_eq!(granted, vec![t(1)]);
                assert_eq!(s.table().held_mode(t(1), g(0)), Some(X));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn release_grants_batch_of_readers() {
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), X), AcquireOutcome::Granted);
        assert!(matches!(
            s.acquire(t(2), g(0), S),
            AcquireOutcome::Waiting { .. }
        ));
        assert!(matches!(
            s.acquire(t(3), g(0), S),
            AcquireOutcome::Waiting { .. }
        ));
        let granted = s.release(t(1));
        assert_eq!(granted, vec![t(2), t(3)]);
    }

    #[test]
    #[should_panic(expected = "already waiting")]
    fn request_while_waiting_panics() {
        let mut s = TwoPhaseScheduler::new();
        s.acquire(t(1), g(0), X);
        let _ = s.acquire(t(2), g(0), X);
        let _ = s.acquire(t(2), g(1), X);
    }
}
