//! Incremental two-phase locking with deadlock detection (extension).
//!
//! The paper restricts itself to conservative locking (and cites Ries &
//! Stonebraker's finding that "claim as needed" did not change the
//! conclusions). This module implements the claim-as-needed protocol so
//! that claim can be re-examined: locks are acquired one at a time as the
//! transaction touches granules, conflicts enqueue in the lock table, a
//! waits-for graph is maintained, and any cycle is broken by aborting the
//! **youngest** transaction on it (fewest locks invested is a common
//! alternative; youngest-aborts gives deterministic, starvation-resistant
//! behaviour with monotone transaction ids).
//!
//! The steady-state entry points are [`TwoPhaseScheduler::acquire_into`],
//! [`TwoPhaseScheduler::release_into`] and
//! [`TwoPhaseScheduler::abort_into`], which report side effects through
//! caller-owned [`AcquireEffects`]/`Vec` buffers and allocate nothing once
//! warm; the `Vec`-returning wrappers remain for tests and diagnostics.

use lockgran_sim::DetMap;

use crate::deadlock::WaitsForGraph;
use crate::mode::LockMode;
use crate::table::{GranuleId, LockTable, TxnId};

/// Outcome of an incremental lock acquisition (allocating wrapper form;
/// see [`AcquireStatus`] for the buffer-reusing variant).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Lock held; proceed.
    Granted,
    /// Queued behind the returned blockers; the transaction must wait for
    /// a [`TwoPhaseScheduler::release`] that grants it.
    Waiting {
        /// Transactions waited on.
        blockers: Vec<TxnId>,
    },
    /// Granting would deadlock. One request can close several cycles at
    /// once (every pre-existing inbound edge to the requester is a
    /// potential return path), so victims are aborted — youngest on the
    /// detected cycle first — until the graph is acyclic again; each has
    /// all its locks released and its waits cancelled. The requester's
    /// queued request is re-evaluated against the post-abort table and
    /// its status is reported in `retry`; if the requester is among the
    /// victims the caller must restart it.
    Deadlock {
        /// The aborted transactions, in abort order (each the youngest on
        /// the cycle that condemned it). Never empty.
        victims: Vec<TxnId>,
        /// *Other* transactions granted locks as a side effect of the
        /// aborts. The requester is never listed here — its post-abort
        /// status is `retry`.
        granted: Vec<TxnId>,
        /// Post-abort status of the requester's queued request.
        retry: RetryOutcome,
    },
}

/// Tag returned by [`TwoPhaseScheduler::acquire_into`]; the lists backing
/// the corresponding [`AcquireOutcome`] variants land in the caller's
/// [`AcquireEffects`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireStatus {
    /// Lock held; proceed. (`effects` untouched beyond the initial clear.)
    Granted,
    /// Queued; `effects.blockers` lists the transactions waited on.
    Waiting,
    /// Deadlock broken; `effects.victims`/`effects.granted` carry the
    /// side effects and `retry` the requester's post-abort status.
    Deadlock {
        /// Post-abort status of the requester's queued request.
        retry: RetryOutcome,
    },
}

/// Caller-owned side-effect buffers for
/// [`TwoPhaseScheduler::acquire_into`]. Reusing one across calls makes
/// the steady-state acquire path allocation-free.
#[derive(Default, Debug)]
pub struct AcquireEffects {
    /// Transactions the queued request waits on (Waiting).
    pub blockers: Vec<TxnId>,
    /// Aborted transactions, youngest-per-cycle in abort order (Deadlock).
    pub victims: Vec<TxnId>,
    /// Third parties granted by the aborts (Deadlock).
    pub granted: Vec<TxnId>,
}

impl AcquireEffects {
    /// Empty all three lists (capacity retained).
    pub fn clear(&mut self) {
        self.blockers.clear();
        self.victims.clear();
        self.granted.clear();
    }
}

/// Post-abort status of the requester whose `acquire` detected a deadlock
/// (see [`AcquireOutcome::Deadlock::retry`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryOutcome {
    /// The requester itself was the victim: its locks were released and
    /// its request cancelled; the caller must restart the transaction.
    SelfAborted,
    /// Aborting the victim freed the requested lock; the requester holds
    /// it now and may proceed.
    Granted,
    /// The requester remains queued behind the surviving holders.
    StillWaiting,
}

/// Claim-as-needed two-phase locking scheduler.
#[derive(Default, Debug)]
pub struct TwoPhaseScheduler {
    table: LockTable,
    graph: WaitsForGraph,
    /// Requests currently queued in the table: txn → (granule, mode).
    waiting: DetMap<(GranuleId, LockMode)>,
    aborts: u64,
    /// Scratch: promotion sink shared by the release/abort paths.
    promote_scratch: Vec<(TxnId, GranuleId, LockMode)>,
}

impl TwoPhaseScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size the lock table, the waiting map, the waits-for graph and
    /// the promotion scratch for `txns` concurrent transactions holding
    /// or awaiting up to `records` lock requests in total, so a closed
    /// system running at that multiprogramming level never allocates on
    /// the acquire/release/abort paths — not even when a record waiter
    /// count first occurs deep into a run. Skip the call when the worst
    /// case is too large to provision eagerly.
    pub fn prewarm(&mut self, txns: usize, records: usize) {
        self.table.prewarm(txns, records);
        self.waiting.reserve(txns);
        self.graph.prewarm(txns);
        self.promote_scratch.reserve(txns);
    }

    /// Drop all scheduler and table state but keep the allocations
    /// (reset-equals-fresh).
    pub fn reset(&mut self) {
        self.table.reset();
        self.graph.clear();
        self.waiting.clear();
        self.aborts = 0;
        self.promote_scratch.clear();
    }

    /// Acquire one lock for `txn` (allocating wrapper around
    /// [`TwoPhaseScheduler::acquire_into`]). If a deadlock would result,
    /// the youngest (largest-id) transaction on each cycle is aborted
    /// until no cycle remains.
    ///
    /// # Panics
    /// Panics if `txn` is already waiting for a lock (a transaction is a
    /// single thread of control: it cannot issue a second request while
    /// blocked).
    pub fn acquire(&mut self, txn: TxnId, granule: GranuleId, mode: LockMode) -> AcquireOutcome {
        let mut fx = AcquireEffects::default();
        match self.acquire_into(txn, granule, mode, &mut fx) {
            AcquireStatus::Granted => AcquireOutcome::Granted,
            AcquireStatus::Waiting => AcquireOutcome::Waiting {
                blockers: fx.blockers,
            },
            AcquireStatus::Deadlock { retry } => AcquireOutcome::Deadlock {
                victims: fx.victims,
                granted: fx.granted,
                retry,
            },
        }
    }

    /// Acquire one lock for `txn`, reporting side effects through the
    /// caller's reusable `effects` buffers (cleared first). See
    /// [`TwoPhaseScheduler::acquire`] for semantics and panics.
    pub fn acquire_into(
        &mut self,
        txn: TxnId,
        granule: GranuleId,
        mode: LockMode,
        effects: &mut AcquireEffects,
    ) -> AcquireStatus {
        effects.clear();
        assert!(
            !self.waiting.contains_key(txn.0),
            "{txn:?} issued a request while already waiting"
        );
        if self
            .table
            .lock_into(txn, granule, mode, &mut effects.blockers)
        {
            return AcquireStatus::Granted;
        }
        self.waiting.insert(txn.0, (granule, mode));
        for b in &effects.blockers {
            self.graph.add_edge(txn, *b);
        }
        // One request can close several cycles at once (the new edges meet
        // every pre-existing inbound edge to `txn`), and aborting one
        // victim only breaks the cycles it lies on — so detect and abort
        // until no cycle through `txn` remains. The loop terminates: every
        // abort removes a node from the graph, and once `txn` stops
        // waiting (it was granted or aborted) it has no outgoing edges
        // left.
        while let Some(victim) = self.graph.find_cycle_from(txn).map(|cycle| {
            // lint:allow(P001): find_cycle_from never returns an empty cycle
            *cycle.iter().max().expect("cycle is non-empty")
        }) {
            self.abort_collect(victim, &mut effects.granted);
            self.aborts += 1;
            effects.victims.push(victim);
        }
        if effects.victims.is_empty() {
            AcquireStatus::Waiting
        } else {
            // Re-evaluate the requester's queued request against the
            // post-abort table: the aborts may have promoted it (reported
            // as `retry`, not as a side effect), left it queued, or
            // cancelled it outright.
            let retry = if effects.victims.contains(&txn) {
                RetryOutcome::SelfAborted
            } else if let Some(pos) = effects.granted.iter().position(|g| *g == txn) {
                effects.granted.remove(pos);
                RetryOutcome::Granted
            } else {
                debug_assert!(self.waiting.contains_key(txn.0));
                RetryOutcome::StillWaiting
            };
            AcquireStatus::Deadlock { retry }
        }
    }

    /// Abort `victim`: drop its locks and queued request, grant whatever
    /// becomes available. Returns the transactions granted as a result.
    pub fn abort(&mut self, victim: TxnId) -> Vec<TxnId> {
        let mut granted = Vec::new();
        self.abort_into(victim, &mut granted);
        granted
    }

    /// Abort `victim`, appending the transactions granted as a result to
    /// `granted` (cleared first).
    pub fn abort_into(&mut self, victim: TxnId, granted: &mut Vec<TxnId>) {
        granted.clear();
        self.abort_collect(victim, granted);
    }

    /// Abort `victim`, appending (not clearing) grants — the deadlock
    /// loop accumulates across several victims.
    fn abort_collect(&mut self, victim: TxnId, granted: &mut Vec<TxnId>) {
        self.waiting.remove(victim.0);
        self.graph.remove_txn(victim);
        let mut promoted = std::mem::take(&mut self.promote_scratch);
        self.table.release_all_into(victim, &mut promoted);
        self.note_grants(&promoted, granted);
        self.promote_scratch = promoted;
    }

    /// Commit `txn`: release all its locks. Returns the transactions
    /// granted as a result (their `acquire` has now succeeded; callers
    /// resume them).
    pub fn release(&mut self, txn: TxnId) -> Vec<TxnId> {
        let mut granted = Vec::new();
        self.release_into(txn, &mut granted);
        granted
    }

    /// Commit `txn`, appending the transactions granted as a result to
    /// `granted` (cleared first).
    pub fn release_into(&mut self, txn: TxnId, granted: &mut Vec<TxnId>) {
        granted.clear();
        debug_assert!(
            !self.waiting.contains_key(txn.0),
            "{txn:?} released while waiting"
        );
        self.graph.remove_txn(txn);
        let mut promoted = std::mem::take(&mut self.promote_scratch);
        self.table.release_all_into(txn, &mut promoted);
        self.note_grants(&promoted, granted);
        self.promote_scratch = promoted;
    }

    fn note_grants(&mut self, promoted: &[(TxnId, GranuleId, LockMode)], granted: &mut Vec<TxnId>) {
        for (t, g, m) in promoted {
            if let Some(&(wg, wm)) = self.waiting.get(t.0) {
                debug_assert_eq!(wg, *g, "{t:?} granted a granule it was not waiting for");
                debug_assert_eq!(
                    wm.supremum(*m),
                    *m,
                    "{t:?} granted {m} which does not cover the waited-for {wm}"
                );
                self.waiting.remove(t.0);
                // Only the satisfied wait's outgoing edges go away.
                // Inbound edges from transactions queued behind `t` stay:
                // they now wait on a *holder*, and deleting them (the old
                // `remove_txn` behaviour) made later cycles through `t`
                // invisible to the detector.
                self.graph.remove_outgoing(*t);
                granted.push(*t);
            }
        }
    }

    /// Is `txn` currently queued for a lock?
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.waiting.contains_key(txn.0)
    }

    /// Transactions `txn`'s queued request currently waits on (the
    /// waits-for edges out of `txn`); empty when `txn` is not waiting.
    /// Under exclusive-only locking a queued request always has at least
    /// one edge — every earlier waiter and every holder conflicts with
    /// it, so its recorded blockers cannot all disappear while it stays
    /// queued.
    pub fn blockers_of(&self, txn: TxnId) -> impl Iterator<Item = TxnId> + '_ {
        self.graph.waits_on(txn)
    }

    /// Total deadlock aborts performed.
    pub fn abort_count(&self) -> u64 {
        self.aborts
    }

    /// Access the underlying lock table.
    pub fn table(&self) -> &LockTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{S, X};

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }
    fn g(n: u64) -> GranuleId {
        GranuleId(n)
    }

    fn holds_nothing(s: &TwoPhaseScheduler, txn: TxnId) -> bool {
        s.table().holdings(txn).next().is_none()
    }

    #[test]
    fn grant_wait_release_cycle() {
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), X), AcquireOutcome::Granted);
        let out = s.acquire(t(2), g(0), X);
        assert_eq!(
            out,
            AcquireOutcome::Waiting {
                blockers: vec![t(1)]
            }
        );
        assert!(s.is_waiting(t(2)));
        let granted = s.release(t(1));
        assert_eq!(granted, vec![t(2)]);
        assert!(!s.is_waiting(t(2)));
        assert_eq!(s.table().held_mode(t(2), g(0)), Some(X));
    }

    #[test]
    fn classic_two_transaction_deadlock_aborts_youngest() {
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), X), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(2), g(1), X), AcquireOutcome::Granted);
        assert!(matches!(
            s.acquire(t(1), g(1), X),
            AcquireOutcome::Waiting { .. }
        ));
        // t2 closing the cycle: youngest (t2) is the victim.
        match s.acquire(t(2), g(0), X) {
            AcquireOutcome::Deadlock {
                victims,
                granted,
                retry,
            } => {
                assert_eq!(victims, vec![t(2)]);
                // Aborting t2 frees g1, granting t1's queued request.
                assert_eq!(granted, vec![t(1)]);
                assert_eq!(retry, RetryOutcome::SelfAborted);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert_eq!(s.abort_count(), 1);
        assert_eq!(s.table().held_mode(t(1), g(1)), Some(X));
        assert!(holds_nothing(&s, t(2)));
    }

    #[test]
    fn three_way_deadlock_detected() {
        let mut s = TwoPhaseScheduler::new();
        for i in 0..3u64 {
            assert_eq!(s.acquire(t(i + 1), g(i), X), AcquireOutcome::Granted);
        }
        assert!(matches!(
            s.acquire(t(1), g(1), X),
            AcquireOutcome::Waiting { .. }
        ));
        assert!(matches!(
            s.acquire(t(2), g(2), X),
            AcquireOutcome::Waiting { .. }
        ));
        match s.acquire(t(3), g(0), X) {
            AcquireOutcome::Deadlock { victims, .. } => assert_eq!(victims, vec![t(3)]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn grant_preserves_inbound_edges_for_later_cycle() {
        // Regression for the `note_grants` waits-for maintenance bug:
        // granting T2 used `remove_txn`, which also deleted the inbound
        // edge from T3 still queued behind it, so the cycle closed below
        // went undetected (a permanent, silent deadlock).
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(3), g(2), X), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(1), g(0), X), AcquireOutcome::Granted);
        assert!(matches!(
            s.acquire(t(2), g(0), X),
            AcquireOutcome::Waiting { .. }
        ));
        // T3 queues behind T2 on g0: edge T3 -> T2.
        assert!(matches!(
            s.acquire(t(3), g(0), X),
            AcquireOutcome::Waiting { .. }
        ));
        // T1's release grants T2. T3 now waits on the *holder* T2 — that
        // edge must survive the grant.
        assert_eq!(s.release(t(1)), vec![t(2)]);
        assert!(s.is_waiting(t(3)));
        // T1 re-requests, queueing on g2 behind T3: edge T1 -> T3.
        assert!(matches!(
            s.acquire(t(1), g(2), X),
            AcquireOutcome::Waiting { .. }
        ));
        // T2 requests g2, closing T2 -> T1 -> T3 -> T2. Detectable only
        // through the preserved T3 -> T2 edge.
        match s.acquire(t(2), g(2), X) {
            AcquireOutcome::Deadlock {
                victims,
                granted,
                retry,
            } => {
                assert_eq!(victims, vec![t(3)]);
                // Aborting T3 frees g2; the earlier waiter T1 is granted.
                assert_eq!(granted, vec![t(1)]);
                // T2 stays queued on g2 behind T1.
                assert_eq!(retry, RetryOutcome::StillWaiting);
            }
            other => panic!("cycle through the granted txn went undetected: {other:?}"),
        }
        assert_eq!(s.abort_count(), 1);
        assert_eq!(s.table().held_mode(t(1), g(2)), Some(X));
        assert!(s.is_waiting(t(2)));
        assert!(!s.is_waiting(t(3)));
    }

    #[test]
    fn non_self_victim_grants_requester_on_retry() {
        // The requester closes the cycle but an *older* id means the other
        // transaction is the victim; the re-evaluated request is granted.
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), X), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(2), g(1), X), AcquireOutcome::Granted);
        assert!(matches!(
            s.acquire(t(2), g(0), X),
            AcquireOutcome::Waiting { .. }
        ));
        match s.acquire(t(1), g(1), X) {
            AcquireOutcome::Deadlock {
                victims,
                granted,
                retry,
            } => {
                assert_eq!(victims, vec![t(2)]);
                // The requester's own grant is reported via `retry`, not
                // in the side-effect list.
                assert!(granted.is_empty());
                assert_eq!(retry, RetryOutcome::Granted);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert_eq!(s.table().held_mode(t(1), g(1)), Some(X));
        assert!(!s.is_waiting(t(1)));
        assert!(holds_nothing(&s, t(2)));
    }

    #[test]
    fn readers_do_not_deadlock() {
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), S), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(2), g(1), S), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(1), g(1), S), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(2), g(0), S), AcquireOutcome::Granted);
        assert_eq!(s.abort_count(), 0);
    }

    #[test]
    fn upgrade_deadlock_is_broken() {
        // Both read the same granule, both try to upgrade: a classic
        // conversion deadlock.
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), S), AcquireOutcome::Granted);
        assert_eq!(s.acquire(t(2), g(0), S), AcquireOutcome::Granted);
        assert!(matches!(
            s.acquire(t(1), g(0), X),
            AcquireOutcome::Waiting { .. }
        ));
        match s.acquire(t(2), g(0), X) {
            AcquireOutcome::Deadlock {
                victims,
                granted,
                retry,
            } => {
                assert_eq!(victims, vec![t(2)]);
                assert_eq!(granted, vec![t(1)]);
                assert_eq!(retry, RetryOutcome::SelfAborted);
                assert_eq!(s.table().held_mode(t(1), g(0)), Some(X));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn release_grants_batch_of_readers() {
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), X), AcquireOutcome::Granted);
        assert!(matches!(
            s.acquire(t(2), g(0), S),
            AcquireOutcome::Waiting { .. }
        ));
        assert!(matches!(
            s.acquire(t(3), g(0), S),
            AcquireOutcome::Waiting { .. }
        ));
        let granted = s.release(t(1));
        assert_eq!(granted, vec![t(2), t(3)]);
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let mut s = TwoPhaseScheduler::new();
        assert_eq!(s.acquire(t(1), g(0), X), AcquireOutcome::Granted);
        assert!(matches!(
            s.acquire(t(2), g(0), X),
            AcquireOutcome::Waiting { .. }
        ));
        s.reset();
        assert_eq!(s.abort_count(), 0);
        assert!(!s.is_waiting(t(2)));
        assert_eq!(s.acquire(t(2), g(0), X), AcquireOutcome::Granted);
        assert_eq!(s.table().held_mode(t(2), g(0)), Some(X));
    }

    #[test]
    #[should_panic(expected = "already waiting")]
    fn request_while_waiting_panics() {
        let mut s = TwoPhaseScheduler::new();
        s.acquire(t(1), g(0), X);
        let _ = s.acquire(t(2), g(0), X);
        let _ = s.acquire(t(2), g(1), X);
    }
}
