//! Thread-safe sharded lock table.
//!
//! The single-threaded [`crate::table::LockTable`] is what the simulator
//! drives; a lock manager a real system would adopt must also work under
//! concurrent threads. [`ShardedLockTable`] partitions the granule space
//! over independently-locked shards (the standard production design —
//! contention on the lock *manager* scales with shards, not with the
//! whole table) and offers deadlock-free **all-or-nothing try-locking**:
//!
//! * granules are processed in sorted order, so shard mutexes are only
//!   ever held one at a time, briefly;
//! * on the first conflict everything acquired by the attempt is rolled
//!   back — no partial holdings, no waiting, hence no deadlock;
//! * callers retry at their own pace (the conservative protocol's
//!   blocked queue lives above this layer).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use lockgran_sim::DetMap;

use crate::mode::LockMode;
use crate::table::{GranuleId, TxnId};

#[derive(Default)]
struct Shard {
    /// granule → granted holders (O(1) hashed lookup; see
    /// [`lockgran_sim::DetMap`]).
    granted: DetMap<Vec<(TxnId, LockMode)>>,
    /// Spare holder lists recycled through `granted`, so the steady
    /// state grants and revokes without touching the allocator.
    spare: Vec<Vec<(TxnId, LockMode)>>,
}

impl Shard {
    fn compatible(&self, granule: u64, txn: TxnId, mode: LockMode) -> bool {
        self.granted.get(granule).is_none_or(|holders| {
            holders
                .iter()
                .all(|&(t, held)| t == txn || mode.compatible(held))
        })
    }

    fn grant(&mut self, granule: u64, txn: TxnId, mode: LockMode) {
        let holders = self.granted.get_or_insert_with(granule, Vec::new);
        if holders.capacity() == 0 {
            if let Some(spare) = self.spare.pop() {
                *holders = spare;
            }
        }
        match holders.iter_mut().find(|(t, _)| *t == txn) {
            Some((_, held)) => *held = held.supremum(mode),
            None => holders.push((txn, mode)),
        }
    }

    fn revoke(&mut self, granule: u64, txn: TxnId) {
        let emptied = match self.granted.get_mut(granule) {
            Some(holders) => {
                holders.retain(|(t, _)| *t != txn);
                holders.is_empty()
            }
            None => false,
        };
        if emptied {
            if let Some(list) = self.granted.remove(granule) {
                self.spare.push(list);
            }
        }
    }
}

/// A sharded, thread-safe, try-lock-only lock table (see module docs).
pub struct ShardedLockTable {
    shards: Vec<Mutex<Shard>>,
    grants: AtomicU64,
    conflicts: AtomicU64,
}

impl ShardedLockTable {
    /// Create with `shards` shards (rounded up to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardedLockTable {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            grants: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
        }
    }

    /// Lock the shard owning `granule`.
    ///
    /// A poisoned shard mutex means another thread panicked while holding
    /// it; the table state is unknowable, so propagating the panic is the
    /// only sound response.
    fn shard(&self, granule: GranuleId) -> std::sync::MutexGuard<'_, Shard> {
        let idx = (granule.0 as usize) % self.shards.len();
        // lint:allow(P001): poisoning is unrecoverable for a lock table
        self.shards[idx].lock().expect("shard poisoned")
    }

    /// Attempt to acquire the whole set atomically (all-or-nothing).
    /// Returns `true` and holds every lock on success; acquires nothing
    /// on failure. Duplicate granules in the set are merged by supremum.
    pub fn try_lock_all(&self, txn: TxnId, locks: &[(GranuleId, LockMode)]) -> bool {
        let mut sorted: Vec<(GranuleId, LockMode)> = locks.to_vec();
        sorted.sort_by_key(|(g, _)| *g);
        let mut merged: Vec<(GranuleId, LockMode)> = Vec::with_capacity(sorted.len());
        for (g, m) in sorted {
            match merged.last_mut() {
                Some((lg, lm)) if *lg == g => *lm = lm.supremum(m),
                _ => merged.push((g, m)),
            }
        }
        self.try_lock_all_merged(txn, &merged)
    }

    /// [`ShardedLockTable::try_lock_all`] for a request set the caller
    /// has already sorted by granule and merged (no duplicate granules).
    /// Skips the per-call sort/merge allocation, so hot callers that keep
    /// a reusable sorted buffer acquire without touching the allocator.
    ///
    /// Duplicate granules in `merged` make the rollback path revoke too
    /// much; debug builds assert the precondition.
    pub fn try_lock_all_merged(&self, txn: TxnId, merged: &[(GranuleId, LockMode)]) -> bool {
        debug_assert!(
            merged.windows(2).all(|w| w[0].0 < w[1].0),
            "request set must be sorted and duplicate-free"
        );
        for (i, &(g, m)) in merged.iter().enumerate() {
            let mut shard = self.shard(g);
            if shard.compatible(g.0, txn, m) {
                shard.grant(g.0, txn, m);
            } else {
                drop(shard);
                // Roll back everything acquired by this attempt.
                for &(rg, _) in &merged[..i] {
                    self.shard(rg).revoke(rg.0, txn);
                }
                self.conflicts.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        self.grants.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Release the given granules for `txn` (idempotent).
    pub fn unlock_all(&self, txn: TxnId, granules: &[GranuleId]) {
        for &g in granules {
            self.shard(g).revoke(g.0, txn);
        }
    }

    /// Mode in which `txn` currently holds `granule`, if any.
    pub fn held_mode(&self, txn: TxnId, granule: GranuleId) -> Option<LockMode> {
        self.shard(granule)
            .granted
            .get(granule.0)
            .and_then(|hs| hs.iter().find(|(t, _)| *t == txn).map(|&(_, m)| m))
    }

    /// Successful set acquisitions so far.
    pub fn grant_count(&self) -> u64 {
        self.grants.load(Ordering::Relaxed)
    }

    /// Failed (rolled-back) set acquisitions so far.
    pub fn conflict_count(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Check that no granule has incompatible concurrent holders.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (si, shard) in self.shards.iter().enumerate() {
            // lint:allow(P001): poisoning is unrecoverable for a lock table
            let shard = shard.lock().expect("shard poisoned");
            for (g, holders) in shard.granted.iter() {
                if g as usize % self.shards.len() != si {
                    return Err(format!("granule {g} stored in the wrong shard {si}"));
                }
                for i in 0..holders.len() {
                    for j in (i + 1)..holders.len() {
                        let (t1, m1) = holders[i];
                        let (t2, m2) = holders[j];
                        if t1 == t2 {
                            return Err(format!("{t1:?} granted twice on granule {g}"));
                        }
                        if !m1.compatible(m2) {
                            return Err(format!(
                                "incompatible holders on granule {g}: {t1:?}:{m1} vs {t2:?}:{m2}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{S, X};

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }
    fn xs(ids: &[u64]) -> Vec<(GranuleId, LockMode)> {
        ids.iter().map(|&i| (GranuleId(i), X)).collect()
    }
    fn gs(ids: &[u64]) -> Vec<GranuleId> {
        ids.iter().map(|&i| GranuleId(i)).collect()
    }

    #[test]
    fn disjoint_sets_succeed() {
        let lt = ShardedLockTable::new(4);
        assert!(lt.try_lock_all(t(1), &xs(&[0, 5, 9])));
        assert!(lt.try_lock_all(t(2), &xs(&[1, 6])));
        lt.check_invariants().unwrap();
        assert_eq!(lt.grant_count(), 2);
    }

    #[test]
    fn overlap_fails_without_partial_holdings() {
        let lt = ShardedLockTable::new(4);
        assert!(lt.try_lock_all(t(1), &xs(&[3, 4, 5])));
        assert!(!lt.try_lock_all(t(2), &xs(&[1, 2, 3])));
        // Nothing partial: 1 and 2 are still free.
        assert!(lt.try_lock_all(t(3), &xs(&[1, 2])));
        assert_eq!(lt.conflict_count(), 1);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn shared_locks_coexist_and_block_writers() {
        let lt = ShardedLockTable::new(2);
        let reads: Vec<(GranuleId, LockMode)> = (0..4).map(|i| (GranuleId(i), S)).collect();
        assert!(lt.try_lock_all(t(1), &reads));
        assert!(lt.try_lock_all(t(2), &reads));
        assert!(!lt.try_lock_all(t(3), &xs(&[2])));
        lt.unlock_all(t(1), &gs(&[0, 1, 2, 3]));
        lt.unlock_all(t(2), &gs(&[0, 1, 2, 3]));
        assert!(lt.try_lock_all(t(3), &xs(&[2])));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn duplicates_merge_to_supremum() {
        let lt = ShardedLockTable::new(4);
        assert!(lt.try_lock_all(t(1), &[(GranuleId(7), S), (GranuleId(7), X)]));
        assert_eq!(lt.held_mode(t(1), GranuleId(7)), Some(X));
    }

    #[test]
    fn unlock_is_idempotent() {
        let lt = ShardedLockTable::new(4);
        assert!(lt.try_lock_all(t(1), &xs(&[0])));
        lt.unlock_all(t(1), &gs(&[0]));
        lt.unlock_all(t(1), &gs(&[0]));
        assert_eq!(lt.held_mode(t(1), GranuleId(0)), None);
    }

    /// Real concurrency: mutual exclusion of overlapping X sets under
    /// threads, verified with per-granule CAS ownership markers.
    #[test]
    fn threads_never_hold_conflicting_locks() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;

        const GRANULES: u64 = 32;
        const THREADS: u64 = 8;
        const ROUNDS: usize = 2_000;

        let table = Arc::new(ShardedLockTable::new(8));
        let owners: Arc<Vec<AtomicU64>> =
            Arc::new((0..GRANULES).map(|_| AtomicU64::new(0)).collect());

        let handles: Vec<_> = (1..=THREADS)
            .map(|tid| {
                let table = Arc::clone(&table);
                let owners = Arc::clone(&owners);
                // lint:allow(D004): stress-tests the sharded table's own
                // thread-safety; invariants are order-independent
                std::thread::spawn(move || {
                    let mut state = tid.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    let mut rand = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    let mut successes = 0u64;
                    for _ in 0..ROUNDS {
                        // A small random X set.
                        let a = rand() % GRANULES;
                        let b = rand() % GRANULES;
                        let c = rand() % GRANULES;
                        let set = xs(&[a, b, c]);
                        if !table.try_lock_all(TxnId(tid), &set) {
                            continue;
                        }
                        successes += 1;
                        // Mark ownership: any overlap with another thread
                        // means the lock table failed.
                        let mut mine: Vec<u64> = vec![a, b, c];
                        mine.sort_unstable();
                        mine.dedup();
                        for &g in &mine {
                            let prev = owners[g as usize].swap(tid, Ordering::SeqCst);
                            assert_eq!(prev, 0, "granule {g} already owned by {prev}");
                        }
                        for &g in &mine {
                            let prev = owners[g as usize].swap(0, Ordering::SeqCst);
                            assert_eq!(prev, tid, "granule {g} stolen while held");
                        }
                        table.unlock_all(TxnId(tid), &gs(&mine));
                    }
                    successes
                })
            })
            .collect();

        let total: u64 = handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .sum();
        assert!(total > 0, "no thread ever acquired anything");
        table.check_invariants().unwrap();
        assert_eq!(table.grant_count(), total);
    }

    /// Readers scale: concurrent S sets on the same granules all succeed.
    #[test]
    fn concurrent_readers_all_succeed() {
        use std::sync::Arc;
        let table = Arc::new(ShardedLockTable::new(4));
        let handles: Vec<_> = (1..=8u64)
            .map(|tid| {
                let table = Arc::clone(&table);
                // lint:allow(D004): reader-scaling stress test; every
                // thread asserts independently, no gathered results
                std::thread::spawn(move || {
                    let reads: Vec<(GranuleId, LockMode)> =
                        (0..16).map(|i| (GranuleId(i), S)).collect();
                    for _ in 0..500 {
                        assert!(table.try_lock_all(TxnId(tid), &reads));
                        table.unlock_all(TxnId(tid), &(0..16).map(GranuleId).collect::<Vec<_>>());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        table.check_invariants().unwrap();
    }
}
