//! Waits-for graph and cycle detection.
//!
//! Incremental two-phase locking can deadlock; the standard detector keeps
//! a graph with an edge `A → B` whenever transaction `A` waits for a lock
//! held (or queued ahead) by `B`, and searches for cycles after each new
//! edge. The conservative protocol the paper simulates never needs this —
//! all locks are pre-declared — but the [`crate::twophase`] extension does.

use std::collections::{BTreeMap, BTreeSet};

use crate::table::TxnId;

/// A directed waits-for graph over transactions.
#[derive(Default, Debug)]
pub struct WaitsForGraph {
    edges: BTreeMap<TxnId, BTreeSet<TxnId>>,
}

impl WaitsForGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the edge `waiter → holder`. Self-edges are ignored (a
    /// transaction never waits on itself).
    pub fn add_edge(&mut self, waiter: TxnId, holder: TxnId) {
        if waiter != holder {
            self.edges.entry(waiter).or_default().insert(holder);
        }
    }

    /// Remove a specific edge.
    pub fn remove_edge(&mut self, waiter: TxnId, holder: TxnId) {
        if let Some(out) = self.edges.get_mut(&waiter) {
            out.remove(&holder);
            if out.is_empty() {
                self.edges.remove(&waiter);
            }
        }
    }

    /// Remove every edge into or out of `txn` (it committed or aborted).
    pub fn remove_txn(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        self.edges.retain(|_, out| {
            out.remove(&txn);
            !out.is_empty()
        });
    }

    /// Remove only the edges *out of* `txn` (its wait was satisfied),
    /// preserving inbound edges from transactions still queued behind it.
    /// This is the correct maintenance step when `txn` is **granted** a
    /// lock: its own wait ended, but anyone waiting on `txn` is now
    /// waiting on a holder — those edges are more valid than ever.
    pub fn remove_outgoing(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
    }

    /// Transactions `txn` currently waits on.
    pub fn waits_on(&self, txn: TxnId) -> impl Iterator<Item = TxnId> + '_ {
        self.edges.get(&txn).into_iter().flatten().copied()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Find a cycle reachable from `start`, returned as the list of
    /// transactions on the cycle (in waits-for order, starting anywhere on
    /// the cycle). `None` if `start` is not on/ahead of a cycle.
    ///
    /// Iterative DFS with an explicit stack — transaction chains can be
    /// long under heavy contention and must not overflow the call stack.
    pub fn find_cycle_from(&self, start: TxnId) -> Option<Vec<TxnId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            Gray,
            Black,
        }
        let mut color: BTreeMap<TxnId, Color> = BTreeMap::new();
        let mut path: Vec<TxnId> = Vec::new();
        // Stack holds (node, next-neighbor-iterator position).
        let mut stack: Vec<(TxnId, Vec<TxnId>, usize)> = Vec::new();

        let neighbors = |t: TxnId| -> Vec<TxnId> {
            let mut v: Vec<TxnId> = self.edges.get(&t).into_iter().flatten().copied().collect();
            v.sort(); // deterministic exploration order
            v
        };

        color.insert(start, Color::Gray);
        path.push(start);
        stack.push((start, neighbors(start), 0));

        while let Some((node, nbrs, idx)) = stack.last_mut() {
            if *idx >= nbrs.len() {
                color.insert(*node, Color::Black);
                path.pop();
                stack.pop();
                continue;
            }
            let next = nbrs[*idx];
            *idx += 1;
            match color.get(&next) {
                Some(Color::Gray) => {
                    // Found a back edge: the cycle is the path suffix from
                    // `next`.
                    let pos = path
                        .iter()
                        .position(|&t| t == next)
                        // lint:allow(P001): a gray node is on the DFS path by
                        // construction of the coloring
                        .expect("gray node must be on path");
                    return Some(path[pos..].to_vec());
                }
                Some(Color::Black) => {}
                None => {
                    color.insert(next, Color::Gray);
                    path.push(next);
                    let n = neighbors(next);
                    stack.push((next, n, 0));
                }
            }
        }
        None
    }

    /// Detect any cycle in the whole graph.
    pub fn find_any_cycle(&self) -> Option<Vec<TxnId>> {
        let mut starts: Vec<TxnId> = self.edges.keys().copied().collect();
        starts.sort();
        starts.into_iter().find_map(|s| self.find_cycle_from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn no_cycle_in_chain() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(4));
        assert!(g.find_any_cycle().is_none());
        assert!(g.find_cycle_from(t(1)).is_none());
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        let cycle = g.find_cycle_from(t(1)).expect("cycle");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&t(1)) && cycle.contains(&t(2)));
    }

    #[test]
    fn long_cycle_detected_from_any_entry() {
        let mut g = WaitsForGraph::new();
        for i in 0..10 {
            g.add_edge(t(i), t((i + 1) % 10));
        }
        for i in 0..10 {
            let cycle = g.find_cycle_from(t(i)).expect("cycle");
            assert_eq!(cycle.len(), 10);
        }
    }

    #[test]
    fn cycle_behind_a_tail_is_found() {
        // 0 -> 1 -> 2 -> 3 -> 1 : start node not on the cycle itself.
        let mut g = WaitsForGraph::new();
        g.add_edge(t(0), t(1));
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(1));
        let cycle = g.find_cycle_from(t(0)).expect("cycle");
        assert_eq!(cycle.len(), 3);
        assert!(!cycle.contains(&t(0)));
    }

    #[test]
    fn removing_txn_breaks_cycle() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(1));
        assert!(g.find_any_cycle().is_some());
        g.remove_txn(t(2));
        assert!(g.find_any_cycle().is_none());
        assert_eq!(g.edge_count(), 1); // only 3 -> 1 remains
    }

    #[test]
    fn remove_outgoing_preserves_inbound() {
        // 3 -> 2 -> 1 ; granting 2 must drop only 2 -> 1, keeping 3 -> 2.
        let mut g = WaitsForGraph::new();
        g.add_edge(t(2), t(1));
        g.add_edge(t(3), t(2));
        g.remove_outgoing(t(2));
        assert_eq!(g.edge_count(), 1);
        let inbound: Vec<TxnId> = g.waits_on(t(3)).collect();
        assert_eq!(inbound, vec![t(2)]);
        // A later 2 -> 3 edge now closes a cycle through the kept edge.
        g.add_edge(t(2), t(3));
        assert!(g.find_cycle_from(t(2)).is_some());
    }

    #[test]
    fn self_edges_ignored() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(1));
        assert_eq!(g.edge_count(), 0);
        assert!(g.find_any_cycle().is_none());
    }

    #[test]
    fn diamond_without_cycle() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(1), t(3));
        g.add_edge(t(2), t(4));
        g.add_edge(t(3), t(4));
        assert!(g.find_any_cycle().is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut g = WaitsForGraph::new();
        for i in 0..100_000u64 {
            g.add_edge(t(i), t(i + 1));
        }
        assert!(g.find_cycle_from(t(0)).is_none());
        g.add_edge(t(100_000), t(0));
        assert_eq!(g.find_cycle_from(t(0)).unwrap().len(), 100_001);
    }

    #[test]
    fn remove_edge_is_precise() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(1), t(3));
        g.remove_edge(t(1), t(2));
        let remaining: Vec<TxnId> = g.waits_on(t(1)).collect();
        assert_eq!(remaining, vec![t(3)]);
    }
}
