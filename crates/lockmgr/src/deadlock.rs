//! Waits-for graph and cycle detection.
//!
//! Incremental two-phase locking can deadlock; the standard detector keeps
//! a graph with an edge `A → B` whenever transaction `A` waits for a lock
//! held (or queued ahead) by `B`, and searches for cycles after each new
//! edge. The conservative protocol the paper simulates never needs this —
//! all locks are pre-declared — but the [`crate::twophase`] extension does.
//!
//! Adjacency lists are kept sorted (ascending holder id, matching the old
//! `BTreeSet` layout bit for bit) and recycled through a spare pool, and
//! the DFS reuses stamped per-node colours plus persistent path/stack
//! buffers — steady-state detection allocates nothing.

use lockgran_sim::DetMap;

use crate::table::TxnId;

/// DFS colour: on the current path.
const GRAY: u8 = 1;
/// DFS colour: fully explored, not on any cycle reachable this pass.
const BLACK: u8 = 2;

/// Per-transaction adjacency record.
#[derive(Debug, Default)]
struct Node {
    /// Holders this transaction waits on, sorted ascending.
    out: Vec<TxnId>,
    /// DFS pass that last coloured this node.
    stamp: u64,
    /// Colour, valid only when `stamp` equals the current pass.
    color: u8,
}

/// A directed waits-for graph over transactions.
#[derive(Default, Debug)]
pub struct WaitsForGraph {
    nodes: DetMap<Node>,
    /// Spare adjacency lists recycled through `nodes`.
    spare: Vec<Vec<TxnId>>,
    /// Current DFS pass number (stamps validate per-node colours).
    version: u64,
    /// DFS scratch: the current path, reused across calls.
    path: Vec<TxnId>,
    /// DFS scratch: explicit stack of (node, next-neighbor index).
    stack: Vec<(TxnId, usize)>,
    /// The most recent cycle found (backs the returned slice).
    cycle: Vec<TxnId>,
}

impl WaitsForGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop every edge but keep node slabs, pooled adjacency lists and
    /// DFS scratch (reset-equals-fresh).
    pub fn clear(&mut self) {
        for node in self.nodes.values_mut() {
            let mut out = std::mem::take(&mut node.out);
            out.clear();
            self.spare.push(out);
        }
        self.nodes.clear();
        self.path.clear();
        self.stack.clear();
        self.cycle.clear();
    }

    /// Pre-size every internal structure so `txns` concurrent waiters can
    /// add, search and drop edges without touching the allocator — the
    /// warm-up hook for closed systems where the multiprogramming level
    /// bounds concurrent transactions. Without it the same capacities are
    /// reached lazily, which is amortized-cheap but not *silent*: a
    /// record waiter count late in a run still allocates.
    pub fn prewarm(&mut self, txns: usize) {
        self.nodes.reserve(txns);
        self.spare.reserve(txns);
        while self.spare.len() < txns {
            self.spare.push(Vec::with_capacity(txns));
        }
        let bound = txns + 1;
        self.path.reserve(bound);
        self.stack.reserve(bound);
        self.cycle.reserve(bound);
    }

    /// Add the edge `waiter → holder`. Self-edges are ignored (a
    /// transaction never waits on itself).
    pub fn add_edge(&mut self, waiter: TxnId, holder: TxnId) {
        if waiter == holder {
            return;
        }
        let node = self.nodes.get_or_insert_with(waiter.0, Node::default);
        if node.out.capacity() == 0 {
            if let Some(spare) = self.spare.pop() {
                node.out = spare;
            }
        }
        if let Err(pos) = node.out.binary_search(&holder) {
            node.out.insert(pos, holder);
        }
        // DFS depth is bounded by the node count, so growing the scratch
        // buffers *here* — when the node-count record is set — keeps the
        // search itself allocation-free: a record-length chain discovered
        // late in a run finds capacity already provisioned by the earlier
        // record in concurrent waiters.
        let bound = self.nodes.len() + 1;
        if self.path.capacity() < bound {
            self.path.reserve(bound);
            self.stack.reserve(bound);
            self.cycle.reserve(bound);
        }
    }

    /// Remove a specific edge.
    pub fn remove_edge(&mut self, waiter: TxnId, holder: TxnId) {
        if let Some(node) = self.nodes.get_mut(waiter.0) {
            if let Ok(pos) = node.out.binary_search(&holder) {
                node.out.remove(pos);
            }
        }
    }

    /// Remove every edge into or out of `txn` (it committed or aborted).
    pub fn remove_txn(&mut self, txn: TxnId) {
        self.drop_node(txn);
        for node in self.nodes.values_mut() {
            if let Ok(pos) = node.out.binary_search(&txn) {
                node.out.remove(pos);
            }
        }
    }

    /// Remove only the edges *out of* `txn` (its wait was satisfied),
    /// preserving inbound edges from transactions still queued behind it.
    /// This is the correct maintenance step when `txn` is **granted** a
    /// lock: its own wait ended, but anyone waiting on `txn` is now
    /// waiting on a holder — those edges are more valid than ever.
    pub fn remove_outgoing(&mut self, txn: TxnId) {
        self.drop_node(txn);
    }

    /// Delete `txn`'s node, recycling its adjacency list.
    fn drop_node(&mut self, txn: TxnId) {
        if let Some(mut node) = self.nodes.remove(txn.0) {
            node.out.clear();
            self.spare.push(std::mem::take(&mut node.out));
        }
    }

    /// Transactions `txn` currently waits on, ascending.
    pub fn waits_on(&self, txn: TxnId) -> impl Iterator<Item = TxnId> + '_ {
        self.nodes
            .get(txn.0)
            .map(|n| n.out.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|(_, n)| n.out.len()).sum()
    }

    /// Find a cycle reachable from `start`, returned as the list of
    /// transactions on the cycle (in waits-for order, starting anywhere on
    /// the cycle). `None` if `start` is not on/ahead of a cycle. The slice
    /// is backed by an internal buffer overwritten by the next search.
    ///
    /// Iterative DFS with an explicit stack — transaction chains can be
    /// long under heavy contention and must not overflow the call stack.
    /// Neighbours are explored ascending, so the cycle found is the same
    /// one the sorted-set implementation reported.
    pub fn find_cycle_from(&mut self, start: TxnId) -> Option<&[TxnId]> {
        self.version += 1;
        let version = self.version;
        self.cycle.clear();
        // A transaction with no outgoing edges (no node) cannot be on or
        // ahead of a cycle.
        self.nodes.get(start.0)?;

        let mut path = std::mem::take(&mut self.path);
        let mut stack = std::mem::take(&mut self.stack);
        path.clear();
        stack.clear();
        self.color(start, GRAY, version);
        path.push(start);
        stack.push((start, 0));
        let mut found = false;

        'dfs: while let Some(top) = stack.last_mut() {
            let (node, idx) = (top.0, top.1);
            let next = match self.nodes.get(node.0) {
                Some(n) => n.out.get(idx).copied(),
                None => None,
            };
            let Some(next) = next else {
                // Out-neighbours exhausted: retire the node.
                self.color(node, BLACK, version);
                path.pop();
                stack.pop();
                continue;
            };
            top.1 = idx + 1;
            match self.nodes.get(next.0) {
                // No outgoing edges: cannot close a cycle, skip.
                None => {}
                Some(n) if n.stamp == version && n.color == GRAY => {
                    // Back edge: the cycle is the path suffix from `next`.
                    let pos = match path.iter().position(|&t| t == next) {
                        Some(p) => p,
                        // A gray node is on the DFS path by construction
                        // of the colouring.
                        None => unreachable!("gray node must be on path"),
                    };
                    self.cycle.extend_from_slice(&path[pos..]);
                    found = true;
                    break 'dfs;
                }
                Some(n) if n.stamp == version && n.color == BLACK => {}
                Some(_) => {
                    self.color(next, GRAY, version);
                    path.push(next);
                    stack.push((next, 0));
                }
            }
        }

        self.path = path;
        self.stack = stack;
        if found {
            Some(&self.cycle)
        } else {
            None
        }
    }

    /// Detect any cycle in the whole graph, probing start nodes in
    /// ascending id order. The slice is backed by an internal buffer
    /// overwritten by the next search.
    pub fn find_any_cycle(&mut self) -> Option<&[TxnId]> {
        let mut starts: Vec<u64> = self.nodes.keys().collect();
        starts.sort_unstable();
        for s in starts {
            if self.find_cycle_from(TxnId(s)).is_some() {
                return Some(&self.cycle);
            }
        }
        None
    }

    /// Stamp `txn`'s colour for the current pass (no-op for absent nodes —
    /// they have no out-edges and are never revisited as gray).
    fn color(&mut self, txn: TxnId, color: u8, version: u64) {
        if let Some(n) = self.nodes.get_mut(txn.0) {
            n.stamp = version;
            n.color = color;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn no_cycle_in_chain() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(4));
        assert!(g.find_any_cycle().is_none());
        assert!(g.find_cycle_from(t(1)).is_none());
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        let cycle = g.find_cycle_from(t(1)).expect("cycle");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&t(1)) && cycle.contains(&t(2)));
    }

    #[test]
    fn long_cycle_detected_from_any_entry() {
        let mut g = WaitsForGraph::new();
        for i in 0..10 {
            g.add_edge(t(i), t((i + 1) % 10));
        }
        for i in 0..10 {
            let cycle = g.find_cycle_from(t(i)).expect("cycle");
            assert_eq!(cycle.len(), 10);
        }
    }

    #[test]
    fn cycle_behind_a_tail_is_found() {
        // 0 -> 1 -> 2 -> 3 -> 1 : start node not on the cycle itself.
        let mut g = WaitsForGraph::new();
        g.add_edge(t(0), t(1));
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(1));
        let cycle: Vec<TxnId> = g.find_cycle_from(t(0)).expect("cycle").to_vec();
        assert_eq!(cycle.len(), 3);
        assert!(!cycle.contains(&t(0)));
    }

    #[test]
    fn removing_txn_breaks_cycle() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(1));
        assert!(g.find_any_cycle().is_some());
        g.remove_txn(t(2));
        assert!(g.find_any_cycle().is_none());
        assert_eq!(g.edge_count(), 1); // only 3 -> 1 remains
    }

    #[test]
    fn remove_outgoing_preserves_inbound() {
        // 3 -> 2 -> 1 ; granting 2 must drop only 2 -> 1, keeping 3 -> 2.
        let mut g = WaitsForGraph::new();
        g.add_edge(t(2), t(1));
        g.add_edge(t(3), t(2));
        g.remove_outgoing(t(2));
        assert_eq!(g.edge_count(), 1);
        let inbound: Vec<TxnId> = g.waits_on(t(3)).collect();
        assert_eq!(inbound, vec![t(2)]);
        // A later 2 -> 3 edge now closes a cycle through the kept edge.
        g.add_edge(t(2), t(3));
        assert!(g.find_cycle_from(t(2)).is_some());
    }

    #[test]
    fn self_edges_ignored() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(1));
        assert_eq!(g.edge_count(), 0);
        assert!(g.find_any_cycle().is_none());
    }

    #[test]
    fn diamond_without_cycle() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(1), t(3));
        g.add_edge(t(2), t(4));
        g.add_edge(t(3), t(4));
        assert!(g.find_any_cycle().is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut g = WaitsForGraph::new();
        for i in 0..100_000u64 {
            g.add_edge(t(i), t(i + 1));
        }
        assert!(g.find_cycle_from(t(0)).is_none());
        g.add_edge(t(100_000), t(0));
        assert_eq!(g.find_cycle_from(t(0)).unwrap().len(), 100_001);
    }

    #[test]
    fn remove_edge_is_precise() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(1), t(3));
        g.remove_edge(t(1), t(2));
        let remaining: Vec<TxnId> = g.waits_on(t(1)).collect();
        assert_eq!(remaining, vec![t(3)]);
    }

    #[test]
    fn detection_is_allocation_free_after_warmup() {
        // Colour stamps + pooled scratch: repeated searches over a live
        // graph must not grow any buffer once warmed up.
        let mut g = WaitsForGraph::new();
        for i in 0..50 {
            g.add_edge(t(i), t(i + 1));
        }
        g.add_edge(t(50), t(25));
        for _ in 0..100 {
            assert_eq!(g.find_cycle_from(t(0)).unwrap().len(), 26);
            assert!(g.find_cycle_from(t(30)).is_some());
        }
        // Edges recycle through the spare pool.
        for i in 0..50 {
            g.remove_txn(t(i));
        }
        assert_eq!(g.edge_count(), 0);
        for i in 0..50 {
            g.add_edge(t(i), t(i + 1));
        }
        g.add_edge(t(50), t(25));
        assert_eq!(g.find_cycle_from(t(0)).unwrap().len(), 26);
    }
}
