//! Lock escalation over the granule hierarchy.
//!
//! The paper studies *fixed* granule sizes; production systems resolve
//! the same trade-off adaptively: a transaction starts with fine locks
//! and, once it holds more than a threshold of them under one parent,
//! trades them for a single coarse lock on the parent. This module
//! implements that policy over [`crate::hierarchy::GranuleTree`] — the
//! dynamic counterpart of the paper's static `ltot` sweep.
//!
//! Escalation is attempted, not forced: if the parent lock conflicts with
//! other holders, the transaction keeps its fine locks (escalation must
//! never introduce blocking the fine locks avoided).

use std::collections::BTreeMap;

use crate::hierarchy::{GranuleTree, NodeId};
use crate::mode::LockMode;
use crate::table::{GranuleId, LockTable, TxnId};

/// Escalation policy: when a transaction holds at least `threshold`
/// child locks under one parent, attempt to replace them with a single
/// parent lock.
#[derive(Clone, Copy, Debug)]
pub struct EscalationPolicy {
    /// Child-lock count that triggers escalation.
    pub threshold: usize,
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        // SQL Server's classic default magnitude.
        EscalationPolicy { threshold: 64 }
    }
}

impl EscalationPolicy {
    /// A policy that never escalates (the threshold is unreachable) —
    /// pure multigranularity locking.
    pub fn never() -> Self {
        EscalationPolicy {
            threshold: usize::MAX,
        }
    }
}

/// Apply the escalation policy to a *predeclared* request set.
///
/// The conservative protocol (the one the paper simulates) declares every
/// leaf up front, so escalation can run on the whole set before any lock
/// is taken, instead of lock-by-lock like [`EscalationManager`]: wherever
/// at least `policy.threshold` requested children share a parent, the
/// children are replaced by the parent requested whole in `mode`. The
/// promotion cascades bottom-up — promoted parents that themselves
/// cluster under one grandparent can escalate again, so `threshold = 1`
/// always collapses a non-empty set to the root (whole-database locking).
///
/// Returns the surviving requests, each to be taken in `mode` (callers
/// still owe intention locks on the ancestors of every survivor), and the
/// number of promotions performed.
pub fn escalate_predeclared(
    tree: &GranuleTree,
    policy: EscalationPolicy,
    leaves: &[NodeId],
    mode: LockMode,
) -> (Vec<(NodeId, LockMode)>, u64) {
    let mut kept = Vec::new();
    let mut current = Vec::new();
    let mut promoted = Vec::new();
    let escalations = escalate_predeclared_into(
        tree,
        policy,
        leaves,
        mode,
        &mut kept,
        &mut current,
        &mut promoted,
    );
    (kept, escalations)
}

/// [`escalate_predeclared`] into caller-owned buffers (each cleared
/// first), so steady-state callers reuse capacity instead of allocating
/// three fresh `Vec`s per attempt. `kept` receives the surviving
/// requests; `current` and `promoted` are pure scratch whose contents
/// after the call are unspecified. Returns the promotion count.
pub fn escalate_predeclared_into(
    tree: &GranuleTree,
    policy: EscalationPolicy,
    leaves: &[NodeId],
    mode: LockMode,
    kept: &mut Vec<(NodeId, LockMode)>,
    current: &mut Vec<NodeId>,
    promoted: &mut Vec<NodeId>,
) -> u64 {
    kept.clear();
    let mut escalations = 0u64;
    // Sort (and dedup) so nodes sharing a parent are contiguous; every
    // round works on a single level, so ordering by index suffices.
    current.clear();
    current.extend_from_slice(leaves);
    current.sort_unstable_by_key(|n| (n.level.0, n.index));
    current.dedup();
    while let Some(&first) = current.first() {
        if first.level.0 == 0 {
            // The root cannot escalate further.
            kept.extend(current.drain(..).map(|n| (n, mode)));
            break;
        }
        promoted.clear();
        let mut i = 0;
        while i < current.len() {
            let parent = tree
                .parent(current[i])
                // lint:allow(P001): non-root nodes always have a parent
                .expect("non-root node has a parent");
            let mut j = i;
            while j < current.len() && tree.parent(current[j]) == Some(parent) {
                j += 1;
            }
            if j - i >= policy.threshold {
                escalations += 1;
                promoted.push(parent);
            } else {
                kept.extend(current[i..j].iter().map(|&n| (n, mode)));
            }
            i = j;
        }
        std::mem::swap(current, promoted);
    }
    escalations
}

/// Outcome of one escalation attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EscalationOutcome {
    /// Children released, parent locked; count of child locks freed.
    Escalated {
        /// Parent node now locked.
        parent: NodeId,
        /// Number of child locks released.
        freed: usize,
    },
    /// Below threshold — nothing to do.
    BelowThreshold,
    /// The parent lock would conflict; fine locks kept.
    WouldBlock,
}

/// Tracks per-(transaction, parent) child-lock counts and performs
/// escalation against a [`LockTable`].
#[derive(Debug)]
pub struct EscalationManager {
    policy: EscalationPolicy,
    /// (txn, parent flat id) → children currently locked.
    children: BTreeMap<(TxnId, GranuleId), Vec<NodeId>>,
}

impl EscalationManager {
    /// Create with a policy.
    pub fn new(policy: EscalationPolicy) -> Self {
        EscalationManager {
            policy,
            children: BTreeMap::new(),
        }
    }

    /// Record that `txn` locked leaf/child `node` (call after a
    /// successful fine-grained lock), and attempt escalation if the
    /// threshold is reached. `mode` is the mode held on the children and
    /// requested on the parent.
    pub fn on_child_locked(
        &mut self,
        tree: &GranuleTree,
        table: &mut LockTable,
        txn: TxnId,
        node: NodeId,
        mode: LockMode,
    ) -> EscalationOutcome {
        let Some(parent) = tree.parent(node) else {
            return EscalationOutcome::BelowThreshold; // root has no parent
        };
        let parent_flat = tree.flat_id(parent);
        let children = self.children.entry((txn, parent_flat)).or_default();
        if !children.contains(&node) {
            children.push(node);
        }
        if children.len() < self.policy.threshold {
            return EscalationOutcome::BelowThreshold;
        }
        // Attempt: the transaction already holds the intention mode on
        // the parent; upgrading to the full mode must not conflict with
        // other holders.
        if !table.would_grant(txn, parent_flat, mode) {
            return EscalationOutcome::WouldBlock;
        }
        let out = table.lock(txn, parent_flat, mode);
        debug_assert_eq!(out, crate::table::LockOutcome::Granted);
        let freed = children.len();
        for child in self
            .children
            .remove(&(txn, parent_flat))
            .unwrap_or_default()
        {
            table.unlock(txn, tree.flat_id(child));
        }
        EscalationOutcome::Escalated { parent, freed }
    }

    /// Forget a transaction (commit/abort).
    pub fn forget(&mut self, txn: TxnId) {
        self.children.retain(|(t, _), _| *t != txn);
    }

    /// Child locks currently tracked for a transaction (diagnostics).
    pub fn tracked_children(&self, txn: TxnId) -> usize {
        self.children
            .iter()
            .filter(|((t, _), _)| *t == txn)
            .map(|(_, v)| v.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyLevel;
    use LockMode::{S, X};

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }
    fn node(level: usize, index: u64) -> NodeId {
        NodeId {
            level: HierarchyLevel(level),
            index,
        }
    }
    /// db -> 10 files -> 50 blocks each.
    fn tree() -> GranuleTree {
        GranuleTree::new(&[10, 50])
    }

    /// Lock blocks 0..n of file 0 for txn, tracking escalation.
    fn lock_blocks(
        mgr: &mut EscalationManager,
        tree: &GranuleTree,
        table: &mut LockTable,
        txn: TxnId,
        n: u64,
        mode: LockMode,
    ) -> Vec<EscalationOutcome> {
        (0..n)
            .map(|i| {
                let b = node(2, i);
                tree.lock_hierarchical(table, txn, b, mode).unwrap();
                mgr.on_child_locked(tree, table, txn, b, mode)
            })
            .collect()
    }

    #[test]
    fn escalates_at_threshold() {
        let tr = tree();
        let mut table = LockTable::new();
        let mut mgr = EscalationManager::new(EscalationPolicy { threshold: 5 });
        let outcomes = lock_blocks(&mut mgr, &tr, &mut table, t(1), 5, X);
        assert!(outcomes[..4]
            .iter()
            .all(|o| *o == EscalationOutcome::BelowThreshold));
        assert_eq!(
            outcomes[4],
            EscalationOutcome::Escalated {
                parent: node(1, 0),
                freed: 5
            }
        );
        // The file lock replaced the five block locks.
        assert_eq!(table.held_mode(t(1), tr.flat_id(node(1, 0))), Some(X));
        for i in 0..5 {
            assert_eq!(table.held_mode(t(1), tr.flat_id(node(2, i))), None);
        }
        table.check_invariants().unwrap();
    }

    #[test]
    fn escalation_blocked_by_other_reader_keeps_fine_locks() {
        let tr = tree();
        let mut table = LockTable::new();
        let mut mgr = EscalationManager::new(EscalationPolicy { threshold: 3 });
        // t2 reads one block of file 0 — holds IS on the file.
        tr.lock_hierarchical(&mut table, t(2), node(2, 40), S)
            .unwrap();
        // t1 writes blocks; at the threshold, escalating to X on the file
        // would conflict with t2's IS, so it must keep fine locks.
        let outcomes = lock_blocks(&mut mgr, &tr, &mut table, t(1), 3, X);
        assert_eq!(outcomes[2], EscalationOutcome::WouldBlock);
        for i in 0..3 {
            assert_eq!(table.held_mode(t(1), tr.flat_id(node(2, i))), Some(X));
        }
        table.check_invariants().unwrap();
    }

    #[test]
    fn shared_escalation_coexists_with_other_readers() {
        let tr = tree();
        let mut table = LockTable::new();
        let mut mgr = EscalationManager::new(EscalationPolicy { threshold: 2 });
        tr.lock_hierarchical(&mut table, t(2), node(2, 40), S)
            .unwrap();
        // S-escalation on the file is compatible with t2's IS.
        let outcomes = lock_blocks(&mut mgr, &tr, &mut table, t(1), 2, S);
        assert!(matches!(outcomes[1], EscalationOutcome::Escalated { .. }));
        assert_eq!(table.held_mode(t(1), tr.flat_id(node(1, 0))), Some(S));
        table.check_invariants().unwrap();
    }

    #[test]
    fn counts_are_per_parent() {
        let tr = tree();
        let mut table = LockTable::new();
        let mut mgr = EscalationManager::new(EscalationPolicy { threshold: 3 });
        // Two blocks in file 0, two in file 1: neither reaches 3.
        for &(level, idx) in &[(2usize, 0u64), (2, 1), (2, 50), (2, 51)] {
            let b = node(level, idx);
            tr.lock_hierarchical(&mut table, t(1), b, X).unwrap();
            assert_eq!(
                mgr.on_child_locked(&tr, &mut table, t(1), b, X),
                EscalationOutcome::BelowThreshold
            );
        }
        assert_eq!(mgr.tracked_children(t(1)), 4);
    }

    #[test]
    fn duplicate_child_locks_count_once() {
        let tr = tree();
        let mut table = LockTable::new();
        let mut mgr = EscalationManager::new(EscalationPolicy { threshold: 2 });
        let b = node(2, 7);
        tr.lock_hierarchical(&mut table, t(1), b, X).unwrap();
        assert_eq!(
            mgr.on_child_locked(&tr, &mut table, t(1), b, X),
            EscalationOutcome::BelowThreshold
        );
        assert_eq!(
            mgr.on_child_locked(&tr, &mut table, t(1), b, X),
            EscalationOutcome::BelowThreshold,
            "re-locking the same child must not trigger escalation"
        );
    }

    fn leaves(ids: &[u64]) -> Vec<NodeId> {
        ids.iter().map(|&i| node(2, i)).collect()
    }

    #[test]
    fn predeclared_threshold_one_collapses_to_root() {
        let tr = tree();
        let pol = EscalationPolicy { threshold: 1 };
        // Any non-empty leaf set cascades all the way to the root.
        let (kept, escalations) = escalate_predeclared(&tr, pol, &leaves(&[7]), X);
        assert_eq!(kept, vec![(node(0, 0), X)]);
        assert_eq!(escalations, 2); // file 0, then the database

        let (kept, escalations) = escalate_predeclared(&tr, pol, &leaves(&[0, 60, 499]), X);
        assert_eq!(kept, vec![(node(0, 0), X)]);
        assert_eq!(escalations, 4); // three files, then the database
    }

    #[test]
    fn predeclared_never_policy_keeps_all_leaves() {
        let tr = tree();
        let (kept, escalations) =
            escalate_predeclared(&tr, EscalationPolicy::never(), &leaves(&[3, 1, 2]), X);
        assert_eq!(escalations, 0);
        assert_eq!(
            kept,
            vec![(node(2, 1), X), (node(2, 2), X), (node(2, 3), X)],
            "survivors come back sorted"
        );
    }

    #[test]
    fn predeclared_escalates_only_dense_parents() {
        let tr = tree();
        let pol = EscalationPolicy { threshold: 3 };
        // Three blocks in file 0 (escalates), two in file 1 (kept).
        let (kept, escalations) = escalate_predeclared(&tr, pol, &leaves(&[0, 1, 2, 50, 51]), X);
        assert_eq!(escalations, 1);
        assert_eq!(
            kept,
            vec![(node(2, 50), X), (node(2, 51), X), (node(1, 0), X)]
        );
    }

    #[test]
    fn predeclared_cascades_through_intermediate_levels() {
        // 2 files × 2 blocks; threshold 2: both files escalate, then the
        // two file locks escalate to the root.
        let tr = GranuleTree::new(&[2, 2]);
        let pol = EscalationPolicy { threshold: 2 };
        let all: Vec<NodeId> = (0..4).map(|i| node(2, i)).collect();
        let (kept, escalations) = escalate_predeclared(&tr, pol, &all, X);
        assert_eq!(kept, vec![(node(0, 0), X)]);
        assert_eq!(escalations, 3);
    }

    #[test]
    fn predeclared_dedups_and_handles_empty_sets() {
        let tr = tree();
        let pol = EscalationPolicy { threshold: 2 };
        let (kept, escalations) = escalate_predeclared(&tr, pol, &leaves(&[9, 9]), S);
        assert_eq!(escalations, 0);
        assert_eq!(kept, vec![(node(2, 9), S)]);
        let (kept, escalations) = escalate_predeclared(&tr, pol, &[], X);
        assert!(kept.is_empty());
        assert_eq!(escalations, 0);
    }

    #[test]
    fn forget_clears_tracking() {
        let tr = tree();
        let mut table = LockTable::new();
        let mut mgr = EscalationManager::new(EscalationPolicy { threshold: 10 });
        lock_blocks(&mut mgr, &tr, &mut table, t(1), 4, X);
        assert_eq!(mgr.tracked_children(t(1)), 4);
        mgr.forget(t(1));
        assert_eq!(mgr.tracked_children(t(1)), 0);
    }
}
