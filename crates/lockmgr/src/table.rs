//! The lock table.
//!
//! A hash-indexed map ([`DetMap`]) from granule id to a lock entry
//! holding the **granted group** (transactions currently holding the
//! granule, with their modes) and a **FIFO wait queue**. Grant policy:
//!
//! * A request is granted iff its mode is compatible with every granted
//!   holder *and* no earlier waiter exists (strict FIFO — prevents
//!   starvation of X requests behind a stream of S requests).
//! * The same transaction re-requesting a granule it holds is treated as
//!   an upgrade to the supremum of old and new modes; upgrades jump the
//!   queue (standard practice — the holder cannot wait behind itself) but
//!   must still be compatible with the *other* holders.
//! * A re-request by a transaction that is *already waiting* on the
//!   granule merges into its queued waiter (supremum mode, queue
//!   position kept) instead of enqueueing a second waiter — the old
//!   double-waiter behavior could downgrade the granted mode.
//! * On release, the queue head is granted greedily: consecutive
//!   compatible waiters are admitted together (e.g. a run of S requests).
//!
//! # Layout and determinism
//!
//! Granted groups and wait queues are intrusive singly-linked lists of
//! pooled [`Block`]s (one shared slab, free-list recycled); per-txn
//! holdings and waited-granule sets are pooled [`Link`] lists. Granule
//! and transaction lookup go through [`DetMap`] — O(1), deterministic by
//! construction (see `lockgran_sim::detmap`). No code path iterates a
//! map to decide grant order: grants follow the FIFO queue, release
//! order follows the per-txn holdings list (append order), and wait
//! cancellation processes granules in ascending id order, so every
//! observable sequence is a pure function of the request sequence.
//!
//! Steady-state `lock_into` / `unlock_into` / `release_all_into` cycles
//! allocate nothing once the pools are warm; [`LockTable::reset`] drops
//! all state but keeps every allocation (reset-equals-fresh).

use lockgran_sim::DetMap;

use crate::mode::LockMode;

/// Transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId(pub u64);

/// Lockable granule identifier (0-based, `< ltot`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GranuleId(pub u64);

/// Result of a lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held (possibly upgraded).
    Granted,
    /// The request was queued; `blockers` are the transactions it waits
    /// behind (granted holders plus incompatible earlier waiters).
    Queued {
        /// Transactions this request is waiting on, deduplicated, in
        /// grant-group-then-queue order.
        blockers: Vec<TxnId>,
    },
}

/// Sentinel for "no node" in pooled lists.
const NIL: u32 = u32::MAX;

/// One member of a granted group or wait queue. Pooled; promotion moves
/// a block from the queue to the granted group without touching the
/// allocator.
#[derive(Clone, Copy, Debug)]
struct Block {
    txn: TxnId,
    mode: LockMode,
    next: u32,
}

/// One element of a per-txn granule list (holdings or waited granules).
#[derive(Clone, Copy, Debug)]
struct Link {
    granule: u64,
    next: u32,
}

/// Per-granule lock state: granted group + FIFO wait queue, as heads and
/// tails into the shared block pool. `granted_head` doubles as the
/// entry free-list link while the slot is free.
#[derive(Clone, Copy, Debug)]
struct Entry {
    granted_head: u32,
    granted_tail: u32,
    wait_head: u32,
    wait_tail: u32,
}

const EMPTY_ENTRY: Entry = Entry {
    granted_head: NIL,
    granted_tail: NIL,
    wait_head: NIL,
    wait_tail: NIL,
};

/// Per-transaction state: holdings list (append order — the release
/// scan order) and the granules the txn currently waits on.
#[derive(Clone, Copy, Debug)]
struct TxnRec {
    hold_head: u32,
    hold_tail: u32,
    wait_head: u32,
}

const EMPTY_TXN: TxnRec = TxnRec {
    hold_head: NIL,
    hold_tail: NIL,
    wait_head: NIL,
};

/// A lock table (see module docs).
#[derive(Debug)]
pub struct LockTable {
    /// Granule id -> slot in `entries`.
    index: DetMap<u32>,
    entries: Vec<Entry>,
    /// Entry free list, threaded through `granted_head`.
    free_entry: u32,
    /// Shared pool for granted-group and wait-queue members.
    blocks: Vec<Block>,
    free_block: u32,
    /// Shared pool for per-txn granule lists.
    links: Vec<Link>,
    free_link: u32,
    /// Txn id -> holdings + waits record.
    txns: DetMap<TxnRec>,
    grants: u64,
    waits: u64,
    /// Scratch for release_all's sorted wait-cancel pass.
    cancel_scratch: Vec<u64>,
    /// Scratch for release_all's per-granule promotion results.
    promote_scratch: Vec<(TxnId, LockMode)>,
}

impl Default for LockTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LockTable {
    /// An empty lock table.
    pub fn new() -> Self {
        Self {
            index: DetMap::new(),
            entries: Vec::new(),
            free_entry: NIL,
            blocks: Vec::new(),
            free_block: NIL,
            links: Vec::new(),
            free_link: NIL,
            txns: DetMap::new(),
            grants: 0,
            waits: 0,
            cancel_scratch: Vec::new(),
            promote_scratch: Vec::new(),
        }
    }

    /// Pre-size every pool so `txns` concurrent transactions holding or
    /// awaiting up to `records` lock requests in total never touch the
    /// allocator — even when the concurrent-record high-water mark is
    /// first reached deep into a run. Closed systems know both bounds up
    /// front (multiprogramming level × largest declared set); callers
    /// with unbounded or astronomically large worst cases should skip
    /// the call and let the slabs warm lazily.
    pub fn prewarm(&mut self, txns: usize, records: usize) {
        fn reserve_total<T>(v: &mut Vec<T>, cap: usize) {
            if cap > v.capacity() {
                let grow = cap - v.len();
                v.reserve(grow);
            }
        }
        self.index.reserve(records);
        self.txns.reserve(txns);
        reserve_total(&mut self.entries, records);
        reserve_total(&mut self.blocks, records);
        reserve_total(&mut self.links, records);
        reserve_total(&mut self.cancel_scratch, records);
        reserve_total(&mut self.promote_scratch, txns);
    }

    /// Drop all locks, waiters and counters but keep every allocation:
    /// a reset table behaves exactly like a fresh one (RunArena
    /// contract) while steady-state reuse stays allocation-free.
    pub fn reset(&mut self) {
        self.index.clear();
        self.entries.clear();
        self.free_entry = NIL;
        self.blocks.clear();
        self.free_block = NIL;
        self.links.clear();
        self.free_link = NIL;
        self.txns.clear();
        self.grants = 0;
        self.waits = 0;
        self.cancel_scratch.clear();
        self.promote_scratch.clear();
    }

    // ---- pool plumbing ---------------------------------------------------

    fn alloc_entry(&mut self) -> u32 {
        if self.free_entry != NIL {
            let slot = self.free_entry;
            self.free_entry = self.entries[slot as usize].granted_head;
            self.entries[slot as usize] = EMPTY_ENTRY;
            slot
        } else {
            self.entries.push(EMPTY_ENTRY);
            (self.entries.len() - 1) as u32
        }
    }

    fn free_entry_slot(&mut self, slot: u32) {
        self.entries[slot as usize].granted_head = self.free_entry;
        self.free_entry = slot;
    }

    fn alloc_block(&mut self, txn: TxnId, mode: LockMode) -> u32 {
        if self.free_block != NIL {
            let b = self.free_block;
            self.free_block = self.blocks[b as usize].next;
            self.blocks[b as usize] = Block {
                txn,
                mode,
                next: NIL,
            };
            b
        } else {
            self.blocks.push(Block {
                txn,
                mode,
                next: NIL,
            });
            (self.blocks.len() - 1) as u32
        }
    }

    fn free_block_slot(&mut self, b: u32) {
        self.blocks[b as usize].next = self.free_block;
        self.free_block = b;
    }

    fn alloc_link(&mut self, granule: u64) -> u32 {
        if self.free_link != NIL {
            let l = self.free_link;
            self.free_link = self.links[l as usize].next;
            self.links[l as usize] = Link { granule, next: NIL };
            l
        } else {
            self.links.push(Link { granule, next: NIL });
            (self.links.len() - 1) as u32
        }
    }

    fn free_link_slot(&mut self, l: u32) {
        self.links[l as usize].next = self.free_link;
        self.free_link = l;
    }

    fn txn_rec(&mut self, txn: TxnId) -> &mut TxnRec {
        self.txns.get_or_insert_with(txn.0, || EMPTY_TXN)
    }

    /// Drop the txn record once it neither holds nor waits on anything,
    /// so the txn map tracks only live transactions.
    fn gc_txn(&mut self, txn: TxnId) {
        if let Some(rec) = self.txns.get(txn.0) {
            if rec.hold_head == NIL && rec.wait_head == NIL {
                self.txns.remove(txn.0);
            }
        }
    }

    /// Append `granule` to `txn`'s holdings list. Callers guarantee the
    /// granule is not already present (fresh grants only — upgrades and
    /// upgrade promotions keep their existing link), which is exactly
    /// the dedupe-at-insert contract; debug builds verify it.
    fn add_holding(&mut self, txn: TxnId, granule: GranuleId) {
        debug_assert!(
            !self.holdings(txn).any(|g| g == granule),
            "{txn:?} already holds {granule:?}"
        );
        let link = self.alloc_link(granule.0);
        let rec = self.txn_rec(txn);
        if rec.hold_tail == NIL {
            rec.hold_head = link;
            rec.hold_tail = link;
        } else {
            let tail = rec.hold_tail;
            rec.hold_tail = link;
            self.links[tail as usize].next = link;
        }
    }

    /// Remove `granule` from `txn`'s holdings list, if present.
    fn remove_holding(&mut self, txn: TxnId, granule: GranuleId) {
        let Some(rec) = self.txns.get(txn.0) else {
            return;
        };
        let (mut prev, mut cur) = (NIL, rec.hold_head);
        while cur != NIL {
            let link = self.links[cur as usize];
            if link.granule == granule.0 {
                if prev == NIL {
                    self.txn_rec(txn).hold_head = link.next;
                } else {
                    self.links[prev as usize].next = link.next;
                }
                if self.txn_rec(txn).hold_tail == cur {
                    self.txn_rec(txn).hold_tail = prev;
                }
                self.free_link_slot(cur);
                return;
            }
            prev = cur;
            cur = link.next;
        }
    }

    /// Record that `txn` now waits on `granule`.
    fn add_wait_ref(&mut self, txn: TxnId, granule: GranuleId) {
        let link = self.alloc_link(granule.0);
        let head = self.txn_rec(txn).wait_head;
        self.links[link as usize].next = head;
        self.txn_rec(txn).wait_head = link;
    }

    /// Remove `granule` from `txn`'s waited set, if present.
    fn remove_wait_ref(&mut self, txn: TxnId, granule: GranuleId) {
        let Some(rec) = self.txns.get(txn.0) else {
            return;
        };
        let (mut prev, mut cur) = (NIL, rec.wait_head);
        while cur != NIL {
            let link = self.links[cur as usize];
            if link.granule == granule.0 {
                if prev == NIL {
                    self.txn_rec(txn).wait_head = link.next;
                } else {
                    self.links[prev as usize].next = link.next;
                }
                self.free_link_slot(cur);
                return;
            }
            prev = cur;
            cur = link.next;
        }
    }

    // ---- per-entry list helpers -----------------------------------------

    fn holder_mode_at(&self, slot: u32, txn: TxnId) -> Option<LockMode> {
        let mut cur = self.entries[slot as usize].granted_head;
        while cur != NIL {
            let b = self.blocks[cur as usize];
            if b.txn == txn {
                return Some(b.mode);
            }
            cur = b.next;
        }
        None
    }

    /// Is `mode` compatible with every granted holder other than `txn`?
    fn compatible_with_granted_at(&self, slot: u32, txn: TxnId, mode: LockMode) -> bool {
        let mut cur = self.entries[slot as usize].granted_head;
        while cur != NIL {
            let b = self.blocks[cur as usize];
            if b.txn != txn && !mode.compatible(b.mode) {
                return false;
            }
            cur = b.next;
        }
        true
    }

    fn push_granted(&mut self, slot: u32, block: u32) {
        let e = &mut self.entries[slot as usize];
        let tail = e.granted_tail;
        if tail == NIL {
            e.granted_head = block;
        } else {
            self.blocks[tail as usize].next = block;
        }
        self.entries[slot as usize].granted_tail = block;
        self.blocks[block as usize].next = NIL;
    }

    /// Unlink `txn`'s granted block, returning its mode.
    fn remove_granted(&mut self, slot: u32, txn: TxnId) -> Option<LockMode> {
        let (mut prev, mut cur) = (NIL, self.entries[slot as usize].granted_head);
        while cur != NIL {
            let b = self.blocks[cur as usize];
            if b.txn == txn {
                let e = &mut self.entries[slot as usize];
                if prev == NIL {
                    e.granted_head = b.next;
                } else {
                    self.blocks[prev as usize].next = b.next;
                }
                if self.entries[slot as usize].granted_tail == cur {
                    self.entries[slot as usize].granted_tail = prev;
                }
                self.free_block_slot(cur);
                return Some(b.mode);
            }
            prev = cur;
            cur = b.next;
        }
        None
    }

    fn push_waiter(&mut self, slot: u32, block: u32) {
        let e = &mut self.entries[slot as usize];
        let tail = e.wait_tail;
        if tail == NIL {
            e.wait_head = block;
        } else {
            self.blocks[tail as usize].next = block;
        }
        self.entries[slot as usize].wait_tail = block;
        self.blocks[block as usize].next = NIL;
    }

    /// Unlink `txn`'s queued waiter block, if any, returning it (caller
    /// frees or reuses it).
    fn remove_waiter(&mut self, slot: u32, txn: TxnId) -> Option<u32> {
        let (mut prev, mut cur) = (NIL, self.entries[slot as usize].wait_head);
        while cur != NIL {
            let b = self.blocks[cur as usize];
            if b.txn == txn {
                let e = &mut self.entries[slot as usize];
                if prev == NIL {
                    e.wait_head = b.next;
                } else {
                    self.blocks[prev as usize].next = b.next;
                }
                if self.entries[slot as usize].wait_tail == cur {
                    self.entries[slot as usize].wait_tail = prev;
                }
                return Some(cur);
            }
            prev = cur;
            cur = b.next;
        }
        None
    }

    fn entry_is_empty(&self, slot: u32) -> bool {
        let e = &self.entries[slot as usize];
        e.granted_head == NIL && e.wait_head == NIL
    }

    fn gc_entry(&mut self, granule: GranuleId, slot: u32) {
        if self.entry_is_empty(slot) {
            self.index.remove(granule.0);
            self.free_entry_slot(slot);
        }
    }

    // ---- public API ------------------------------------------------------

    /// Request `granule` in `mode` for `txn` (allocating convenience
    /// wrapper around [`LockTable::lock_into`]).
    pub fn lock(&mut self, txn: TxnId, granule: GranuleId, mode: LockMode) -> LockOutcome {
        let mut blockers = Vec::new();
        if self.lock_into(txn, granule, mode, &mut blockers) {
            LockOutcome::Granted
        } else {
            LockOutcome::Queued { blockers }
        }
    }

    /// Request `granule` in `mode` for `txn`. Returns `true` when the
    /// lock is held (possibly upgraded); otherwise the request queued
    /// and `blockers` is filled with the transactions it waits behind
    /// (cleared first; deduplicated, grant-group-then-queue order).
    ///
    /// Re-requests by a holder upgrade to the supremum mode. A
    /// re-request by a transaction already waiting on the granule merges
    /// into its queued waiter (see module docs).
    pub fn lock_into(
        &mut self,
        txn: TxnId,
        granule: GranuleId,
        mode: LockMode,
        blockers: &mut Vec<TxnId>,
    ) -> bool {
        blockers.clear();
        let slot = match self.index.get(granule.0) {
            Some(&s) => s,
            None => {
                let s = self.alloc_entry();
                self.index.insert(granule.0, s);
                s
            }
        };

        // Already waiting: merge into the queued waiter instead of
        // enqueueing a second one (a second waiter could be "promoted"
        // after the first, downgrading the granted mode). A request the
        // held mode already covers is satisfied without touching the
        // queue.
        if let Some(w) = self.find_waiter(slot, txn) {
            if self
                .holder_mode_at(slot, txn)
                .is_some_and(|held| held.supremum(mode) == held)
            {
                return true;
            }
            let merged = self.blocks[w as usize].mode.supremum(mode);
            self.blocks[w as usize].mode = merged;
            self.waits += 1;
            self.collect_blockers(slot, txn, merged, blockers);
            return false;
        }

        if let Some(held) = self.holder_mode_at(slot, txn) {
            // Upgrade path: jumps the queue but must respect other holders.
            let target = held.supremum(mode);
            if target == held {
                return true;
            }
            if self.compatible_with_granted_at(slot, txn, target) {
                self.set_granted_mode(slot, txn, target);
                self.grants += 1;
                return true;
            }
            self.collect_blockers(slot, txn, target, blockers);
            let b = self.alloc_block(txn, target);
            self.push_waiter(slot, b);
            self.add_wait_ref(txn, granule);
            self.waits += 1;
            return false;
        }

        if self.entries[slot as usize].wait_head == NIL
            && self.compatible_with_granted_at(slot, txn, mode)
        {
            let b = self.alloc_block(txn, mode);
            self.push_granted(slot, b);
            self.add_holding(txn, granule);
            self.grants += 1;
            true
        } else {
            self.collect_blockers(slot, txn, mode, blockers);
            let b = self.alloc_block(txn, mode);
            self.push_waiter(slot, b);
            self.add_wait_ref(txn, granule);
            self.waits += 1;
            false
        }
    }

    fn find_waiter(&self, slot: u32, txn: TxnId) -> Option<u32> {
        let mut cur = self.entries[slot as usize].wait_head;
        while cur != NIL {
            let b = self.blocks[cur as usize];
            if b.txn == txn {
                return Some(cur);
            }
            cur = b.next;
        }
        None
    }

    fn set_granted_mode(&mut self, slot: u32, txn: TxnId, mode: LockMode) {
        let mut cur = self.entries[slot as usize].granted_head;
        while cur != NIL {
            let b = &mut self.blocks[cur as usize];
            if b.txn == txn {
                b.mode = mode;
                return;
            }
            cur = b.next;
        }
    }

    /// Non-mutating conflict probe: would `txn` get `granule` in `mode`
    /// right now?
    pub fn would_grant(&self, txn: TxnId, granule: GranuleId, mode: LockMode) -> bool {
        match self.index.get(granule.0) {
            None => true,
            Some(&slot) => {
                if let Some(held) = self.holder_mode_at(slot, txn) {
                    let target = held.supremum(mode);
                    target == held || self.compatible_with_granted_at(slot, txn, target)
                } else {
                    self.entries[slot as usize].wait_head == NIL
                        && self.compatible_with_granted_at(slot, txn, mode)
                }
            }
        }
    }

    /// The first transaction `txn` would wait on if it requested
    /// `granule` in `mode` now (`None` if it would be granted).
    /// Allocation-free variant of [`LockTable::conflicts_with`].
    pub fn first_conflict(&self, txn: TxnId, granule: GranuleId, mode: LockMode) -> Option<TxnId> {
        let &slot = self.index.get(granule.0)?;
        if self.would_grant(txn, granule, mode) {
            return None;
        }
        let mut cur = self.entries[slot as usize].granted_head;
        while cur != NIL {
            let b = self.blocks[cur as usize];
            if b.txn != txn && !mode.compatible(b.mode) {
                return Some(b.txn);
            }
            cur = b.next;
        }
        let mut cur = self.entries[slot as usize].wait_head;
        while cur != NIL {
            let b = self.blocks[cur as usize];
            if b.txn != txn && !mode.compatible(b.mode) {
                return Some(b.txn);
            }
            cur = b.next;
        }
        // FIFO order alone can block: fall back to the queue head.
        let head = self.entries[slot as usize].wait_head;
        (head != NIL).then(|| self.blocks[head as usize].txn)
    }

    /// The transactions `txn` would wait on if it requested `granule` in
    /// `mode` now (empty if it would be granted).
    pub fn conflicts_with(&self, txn: TxnId, granule: GranuleId, mode: LockMode) -> Vec<TxnId> {
        let mut out = Vec::new();
        if let Some(&slot) = self.index.get(granule.0) {
            if !self.would_grant(txn, granule, mode) {
                self.collect_blockers(slot, txn, mode, &mut out);
            }
        }
        out
    }

    fn collect_blockers(&self, slot: u32, txn: TxnId, mode: LockMode, out: &mut Vec<TxnId>) {
        let mut cur = self.entries[slot as usize].granted_head;
        while cur != NIL {
            let b = self.blocks[cur as usize];
            if b.txn != txn && !mode.compatible(b.mode) && !out.contains(&b.txn) {
                out.push(b.txn);
            }
            cur = b.next;
        }
        let mut cur = self.entries[slot as usize].wait_head;
        while cur != NIL {
            let b = self.blocks[cur as usize];
            if b.txn != txn && !mode.compatible(b.mode) && !out.contains(&b.txn) {
                out.push(b.txn);
            }
            cur = b.next;
        }
        // FIFO order alone can block (compatible request behind an
        // incompatible waiter): fall back to the queue head.
        if out.is_empty() {
            let head = self.entries[slot as usize].wait_head;
            if head != NIL {
                out.push(self.blocks[head as usize].txn);
            }
        }
    }

    /// Release `granule` for `txn` (allocating convenience wrapper
    /// around [`LockTable::unlock_into`]).
    pub fn unlock(&mut self, txn: TxnId, granule: GranuleId) -> Vec<(TxnId, LockMode)> {
        let mut woken = Vec::new();
        self.unlock_into(txn, granule, &mut woken);
        woken
    }

    /// Release `granule` for `txn`. Waiters granted as a result are
    /// appended to `woken` (cleared first), in grant order. Releasing a
    /// granule not held is a no-op (idempotent release simplifies
    /// callers).
    pub fn unlock_into(
        &mut self,
        txn: TxnId,
        granule: GranuleId,
        woken: &mut Vec<(TxnId, LockMode)>,
    ) {
        woken.clear();
        let Some(&slot) = self.index.get(granule.0) else {
            return;
        };
        if self.remove_granted(slot, txn).is_none() {
            return;
        }
        self.remove_holding(txn, granule);
        self.gc_txn(txn);
        self.promote(slot, granule, None, woken);
        self.gc_entry(granule, slot);
    }

    /// Release every granule held by `txn` and remove it from any wait
    /// queues (allocating wrapper around [`LockTable::release_all_into`]).
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, GranuleId, LockMode)> {
        let mut woken = Vec::new();
        self.release_all_into(txn, &mut woken);
        woken
    }

    /// Release every granule held by `txn` and remove it from any wait
    /// queues. All waiters granted as a result are appended to `woken`
    /// (cleared first): first the promotions from released holdings in
    /// holdings (append) order, then those from cancelled waits in
    /// ascending granule order.
    pub fn release_all_into(&mut self, txn: TxnId, woken: &mut Vec<(TxnId, GranuleId, LockMode)>) {
        woken.clear();
        let Some(rec) = self.txns.get(txn.0) else {
            return;
        };
        // Phase 1: walk the holdings list in append order, releasing and
        // promoting. The departing txn's own queued waiters (if any) stop
        // promotion exactly like incompatible ones — they are cancelled
        // in phase 2, never self-granted.
        let mut promoted = std::mem::take(&mut self.promote_scratch);
        let mut cur = rec.hold_head;
        while cur != NIL {
            let link = self.links[cur as usize];
            let granule = GranuleId(link.granule);
            let slot = match self.index.get(link.granule) {
                Some(&s) => s,
                None => unreachable!("holdings reference a live entry"),
            };
            self.remove_granted(slot, txn);
            promoted.clear();
            self.promote(slot, granule, Some(txn), &mut promoted);
            woken.extend(promoted.iter().map(|&(t, m)| (t, granule, m)));
            self.gc_entry(granule, slot);
            self.free_link_slot(cur);
            cur = link.next;
        }
        // Phase 2: cancel queued waits in ascending granule order (the
        // order the old full-table scan visited them), promoting anything
        // unblocked by the removal.
        let mut scratch = std::mem::take(&mut self.cancel_scratch);
        scratch.clear();
        let rec = self.txn_rec(txn);
        let mut cur = rec.wait_head;
        rec.hold_head = NIL;
        rec.hold_tail = NIL;
        rec.wait_head = NIL;
        while cur != NIL {
            let link = self.links[cur as usize];
            scratch.push(link.granule);
            self.free_link_slot(cur);
            cur = link.next;
        }
        scratch.sort_unstable();
        for &g in &scratch {
            let granule = GranuleId(g);
            let Some(&slot) = self.index.get(g) else {
                continue;
            };
            if let Some(w) = self.remove_waiter(slot, txn) {
                self.free_block_slot(w);
            }
            promoted.clear();
            self.promote(slot, granule, None, &mut promoted);
            woken.extend(promoted.iter().map(|&(t, m)| (t, granule, m)));
            self.gc_entry(granule, slot);
        }
        self.cancel_scratch = scratch;
        promoted.clear();
        self.promote_scratch = promoted;
        self.txns.remove(txn.0);
    }

    /// Grant the longest compatible prefix of `slot`'s wait queue,
    /// appending each grant to `out`. A waiter belonging to `skip` (a
    /// departing transaction) stops the scan exactly like an
    /// incompatible one — it is about to be cancelled, never granted.
    fn promote(
        &mut self,
        slot: u32,
        granule: GranuleId,
        skip: Option<TxnId>,
        out: &mut Vec<(TxnId, LockMode)>,
    ) {
        loop {
            let head = self.entries[slot as usize].wait_head;
            if head == NIL {
                return;
            }
            let w = self.blocks[head as usize];
            if skip == Some(w.txn) {
                return;
            }
            if !self.compatible_with_granted_at(slot, w.txn, w.mode) {
                return;
            }
            // Pop the head waiter and move its block to the granted group.
            let e = &mut self.entries[slot as usize];
            e.wait_head = w.next;
            if e.wait_head == NIL {
                e.wait_tail = NIL;
            }
            // An upgrading waiter replaces its old granted entry; a fresh
            // waiter gains a holdings link.
            let upgraded = self.remove_granted(slot, w.txn).is_some();
            self.push_granted(slot, head);
            if !upgraded {
                self.add_holding(w.txn, granule);
            }
            self.remove_wait_ref(w.txn, granule);
            self.grants += 1;
            out.push((w.txn, w.mode));
        }
    }

    /// Mode in which `txn` holds `granule`, if any.
    pub fn held_mode(&self, txn: TxnId, granule: GranuleId) -> Option<LockMode> {
        let &slot = self.index.get(granule.0)?;
        self.holder_mode_at(slot, txn)
    }

    /// Granules currently held by `txn`, in acquisition (append) order.
    pub fn holdings(&self, txn: TxnId) -> impl Iterator<Item = GranuleId> + '_ {
        let head = self.txns.get(txn.0).map_or(NIL, |r| r.hold_head);
        LinkIter {
            links: &self.links,
            cur: head,
        }
    }

    /// Number of granules with at least one holder or waiter.
    pub fn active_granules(&self) -> usize {
        self.index.len()
    }

    /// Total grants performed (including upgrades and promotions).
    pub fn grant_count(&self) -> u64 {
        self.grants
    }

    /// Total requests that had to queue.
    pub fn wait_count(&self) -> u64 {
        self.waits
    }

    /// Check internal invariants; returns a description of the first
    /// violation. Used by property tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (g, &slot) in self.index.iter() {
            let g = GranuleId(g);
            // Collect the granted group.
            let mut granted: Vec<(TxnId, LockMode)> = Vec::new();
            let mut cur = self.entries[slot as usize].granted_head;
            while cur != NIL {
                let b = self.blocks[cur as usize];
                granted.push((b.txn, b.mode));
                cur = b.next;
            }
            // 1. All granted holders pairwise compatible.
            for i in 0..granted.len() {
                for j in (i + 1)..granted.len() {
                    let (t1, m1) = granted[i];
                    let (t2, m2) = granted[j];
                    if t1 == t2 {
                        return Err(format!("{t1:?} granted twice on {g:?}"));
                    }
                    if !m1.compatible(m2) {
                        return Err(format!(
                            "incompatible holders on {g:?}: {t1:?}:{m1} vs {t2:?}:{m2}"
                        ));
                    }
                }
            }
            // 2. Queue head must actually conflict (no lost wakeup).
            let head = self.entries[slot as usize].wait_head;
            if head != NIL {
                let w = self.blocks[head as usize];
                let ok = granted
                    .iter()
                    .filter(|(t, _)| *t != w.txn)
                    .all(|(_, held)| w.mode.compatible(*held));
                if ok {
                    return Err(format!(
                        "queue head {:?} on {g:?} is compatible but not granted",
                        w.txn
                    ));
                }
            }
            // 3. No empty entries are retained.
            if granted.is_empty() && head == NIL {
                return Err(format!("empty entry retained for {g:?}"));
            }
            // 4. holdings index consistent with granted groups.
            for (t, _) in &granted {
                if !self.holdings(*t).any(|h| h == g) {
                    return Err(format!("{t:?} granted on {g:?} but missing from holdings"));
                }
            }
        }
        for (t, _) in self.txns.iter() {
            let t = TxnId(t);
            let hs: Vec<GranuleId> = self.holdings(t).collect();
            let mut sorted = hs.clone();
            sorted.sort();
            sorted.dedup();
            if sorted.len() != hs.len() {
                return Err(format!("duplicate holdings entries for {t:?}"));
            }
            for g in &hs {
                let ok = self.held_mode(t, *g).is_some();
                if !ok {
                    return Err(format!("{t:?} holdings list {g:?} but not granted"));
                }
            }
        }
        Ok(())
    }
}

struct LinkIter<'a> {
    links: &'a [Link],
    cur: u32,
}

impl Iterator for LinkIter<'_> {
    type Item = GranuleId;

    fn next(&mut self) -> Option<GranuleId> {
        if self.cur == NIL {
            return None;
        }
        let link = self.links[self.cur as usize];
        self.cur = link.next;
        Some(GranuleId(link.granule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }
    fn g(n: u64) -> GranuleId {
        GranuleId(n)
    }

    fn holding_vec(lt: &LockTable, txn: TxnId) -> Vec<GranuleId> {
        lt.holdings(txn).collect()
    }

    #[test]
    fn exclusive_conflict_queues_fifo() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), X), LockOutcome::Granted);
        let out = lt.lock(t(2), g(0), X);
        assert_eq!(
            out,
            LockOutcome::Queued {
                blockers: vec![t(1)]
            }
        );
        let out = lt.lock(t(3), g(0), X);
        assert!(matches!(out, LockOutcome::Queued { .. }));
        lt.check_invariants().unwrap();

        let granted = lt.unlock(t(1), g(0));
        assert_eq!(granted, vec![(t(2), X)]);
        let granted = lt.unlock(t(2), g(0));
        assert_eq!(granted, vec![(t(3), X)]);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lt = LockTable::new();
        for i in 1..=5 {
            assert_eq!(lt.lock(t(i), g(0), S), LockOutcome::Granted);
        }
        lt.check_invariants().unwrap();
        // An X request queues behind all of them.
        let out = lt.lock(t(9), g(0), X);
        match out {
            LockOutcome::Queued { blockers } => assert_eq!(blockers.len(), 5),
            other => panic!("expected queue, got {other:?}"),
        }
    }

    #[test]
    fn fifo_prevents_reader_starvation_of_writers() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert!(matches!(lt.lock(t(2), g(0), X), LockOutcome::Queued { .. }));
        // A later S must queue behind the X even though it is compatible
        // with the granted group.
        let out = lt.lock(t(3), g(0), S);
        match out {
            LockOutcome::Queued { blockers } => assert_eq!(blockers, vec![t(2)]),
            other => panic!("expected queue, got {other:?}"),
        }
        // Release the reader: X is granted alone; S still waits.
        let granted = lt.unlock(t(1), g(0));
        assert_eq!(granted, vec![(t(2), X)]);
        assert!(lt.held_mode(t(3), g(0)).is_none());
        // Release the writer: S finally granted.
        let granted = lt.unlock(t(2), g(0));
        assert_eq!(granted, vec![(t(3), S)]);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn batch_promotion_of_compatible_prefix() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), X), LockOutcome::Granted);
        for i in 2..=4 {
            assert!(matches!(lt.lock(t(i), g(0), S), LockOutcome::Queued { .. }));
        }
        assert!(matches!(lt.lock(t(5), g(0), X), LockOutcome::Queued { .. }));
        let granted = lt.unlock(t(1), g(0));
        // The three S waiters are admitted together; the X stays queued.
        assert_eq!(granted, vec![(t(2), S), (t(3), S), (t(4), S)]);
        assert!(lt.held_mode(t(5), g(0)).is_none());
        lt.check_invariants().unwrap();
    }

    #[test]
    fn rerequest_same_mode_is_granted() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert_eq!(holding_vec(&lt, t(1)), vec![g(0)]);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn upgrade_succeeds_when_alone() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert_eq!(lt.lock(t(1), g(0), X), LockOutcome::Granted);
        assert_eq!(lt.held_mode(t(1), g(0)), Some(X));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn upgrade_blocks_on_other_reader() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert_eq!(lt.lock(t(2), g(0), S), LockOutcome::Granted);
        let out = lt.lock(t(1), g(0), X);
        assert_eq!(
            out,
            LockOutcome::Queued {
                blockers: vec![t(2)]
            }
        );
        // When the other reader leaves, the upgrade is granted as X.
        let granted = lt.unlock(t(2), g(0));
        assert_eq!(granted, vec![(t(1), X)]);
        assert_eq!(lt.held_mode(t(1), g(0)), Some(X));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn release_all_frees_everything_and_promotes() {
        let mut lt = LockTable::new();
        for i in 0..10 {
            assert_eq!(lt.lock(t(1), g(i), X), LockOutcome::Granted);
        }
        assert!(matches!(lt.lock(t(2), g(3), X), LockOutcome::Queued { .. }));
        assert!(matches!(lt.lock(t(3), g(7), S), LockOutcome::Queued { .. }));
        let promoted = lt.release_all(t(1));
        let mut promoted_txns: Vec<TxnId> = promoted.iter().map(|(t, _, _)| *t).collect();
        promoted_txns.sort();
        assert_eq!(promoted_txns, vec![t(2), t(3)]);
        assert!(holding_vec(&lt, t(1)).is_empty());
        assert_eq!(lt.held_mode(t(2), g(3)), Some(X));
        assert_eq!(lt.held_mode(t(3), g(7)), Some(S));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn release_all_cancels_pending_waits() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), X), LockOutcome::Granted);
        assert!(matches!(lt.lock(t(2), g(0), X), LockOutcome::Queued { .. }));
        assert!(matches!(lt.lock(t(3), g(0), X), LockOutcome::Queued { .. }));
        // t2 aborts while waiting; t3 must not be lost behind it.
        let promoted = lt.release_all(t(2));
        assert!(promoted.is_empty());
        let granted = lt.unlock(t(1), g(0));
        assert_eq!(granted, vec![(t(3), X)]);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn unlock_unheld_is_noop() {
        let mut lt = LockTable::new();
        assert!(lt.unlock(t(1), g(0)).is_empty());
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert!(lt.unlock(t(2), g(0)).is_empty());
        assert_eq!(lt.held_mode(t(1), g(0)), Some(S));
    }

    #[test]
    fn intention_modes_follow_matrix() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), IX), LockOutcome::Granted);
        assert_eq!(lt.lock(t(2), g(0), IX), LockOutcome::Granted);
        assert_eq!(lt.lock(t(3), g(0), IS), LockOutcome::Granted);
        assert!(matches!(lt.lock(t(4), g(0), S), LockOutcome::Queued { .. }));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn counters_track_activity() {
        let mut lt = LockTable::new();
        lt.lock(t(1), g(0), X);
        lt.lock(t(2), g(0), X);
        assert_eq!(lt.grant_count(), 1);
        assert_eq!(lt.wait_count(), 1);
        lt.unlock(t(1), g(0));
        assert_eq!(lt.grant_count(), 2); // promotion counts as a grant
    }

    #[test]
    fn entries_are_garbage_collected() {
        let mut lt = LockTable::new();
        lt.lock(t(1), g(0), X);
        assert_eq!(lt.active_granules(), 1);
        lt.unlock(t(1), g(0));
        assert_eq!(lt.active_granules(), 0);
    }

    #[test]
    fn would_grant_probe_matches_lock() {
        let mut lt = LockTable::new();
        assert!(lt.would_grant(t(1), g(0), X));
        lt.lock(t(1), g(0), S);
        assert!(lt.would_grant(t(2), g(0), S));
        assert!(!lt.would_grant(t(2), g(0), X));
        assert!(lt.would_grant(t(1), g(0), X)); // upgrade when alone
        lt.lock(t(2), g(0), S);
        assert!(!lt.would_grant(t(1), g(0), X)); // upgrade blocked by t2
        assert_eq!(lt.conflicts_with(t(3), g(0), X), vec![t(1), t(2)]);
        assert_eq!(lt.first_conflict(t(3), g(0), X), Some(t(1)));
        assert_eq!(lt.first_conflict(t(3), g(0), S), None);
    }

    /// Regression (ISSUE 10 ride-along): a re-request while waiting must
    /// merge into the queued waiter — never enqueue a duplicate — and
    /// must never leave duplicate granule ids in holdings or downgrade
    /// the eventually-granted mode.
    #[test]
    fn rerequest_while_waiting_merges_without_duplicates() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), X), LockOutcome::Granted);
        // t2 queues for X, then re-requests S while still waiting: the
        // waiter keeps X (supremum), no second queue entry appears.
        assert!(matches!(lt.lock(t(2), g(0), X), LockOutcome::Queued { .. }));
        assert!(matches!(lt.lock(t(2), g(0), S), LockOutcome::Queued { .. }));
        let granted = lt.unlock(t(1), g(0));
        assert_eq!(granted, vec![(t(2), X)], "supremum mode, single grant");
        assert_eq!(lt.held_mode(t(2), g(0)), Some(X));
        assert_eq!(holding_vec(&lt, t(2)), vec![g(0)]);
        lt.check_invariants().unwrap();

        // Upgrade flavor: holder re-requests an upgrade twice while the
        // first upgrade is still queued behind another reader.
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(1), S), LockOutcome::Granted);
        assert_eq!(lt.lock(t(2), g(1), S), LockOutcome::Granted);
        assert!(matches!(lt.lock(t(1), g(1), X), LockOutcome::Queued { .. }));
        assert!(matches!(lt.lock(t(1), g(1), X), LockOutcome::Queued { .. }));
        let granted = lt.unlock(t(2), g(1));
        assert_eq!(granted, vec![(t(1), X)]);
        assert_eq!(
            holding_vec(&lt, t(1)),
            vec![g(1)],
            "upgrade re-request must not duplicate the holding"
        );
        lt.check_invariants().unwrap();
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let mut lt = LockTable::new();
        lt.lock(t(1), g(0), X);
        lt.lock(t(2), g(0), X);
        lt.lock(t(1), g(5), S);
        lt.reset();
        assert_eq!(lt.active_granules(), 0);
        assert_eq!(lt.grant_count(), 0);
        assert_eq!(lt.wait_count(), 0);
        assert!(holding_vec(&lt, t(1)).is_empty());
        assert_eq!(lt.lock(t(2), g(0), X), LockOutcome::Granted);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn pooled_blocks_are_recycled() {
        let mut lt = LockTable::new();
        for round in 0..100 {
            let base = round * 10;
            for i in 0..5 {
                lt.lock(t(i), g(base), S);
            }
            for i in 0..5 {
                lt.unlock(t(i), g(base));
            }
        }
        // One round's worth of blocks suffices for all 100 rounds.
        assert!(
            lt.blocks.len() <= 8,
            "block pool grew to {}",
            lt.blocks.len()
        );
        assert!(lt.links.len() <= 8, "link pool grew to {}", lt.links.len());
    }
}
