//! The lock table.
//!
//! An ordered map from granule id to a lock entry holding the **granted
//! group** (transactions currently holding the granule, with their modes)
//! and a **FIFO wait queue**. Grant policy:
//!
//! * A request is granted iff its mode is compatible with every granted
//!   holder *and* no earlier waiter exists (strict FIFO — prevents
//!   starvation of X requests behind a stream of S requests).
//! * The same transaction re-requesting a granule it holds is treated as
//!   an upgrade to the supremum of old and new modes; upgrades jump the
//!   queue (standard practice — the holder cannot wait behind itself) but
//!   must still be compatible with the *other* holders.
//! * On release, the queue head is granted greedily: consecutive
//!   compatible waiters are admitted together (e.g. a run of S requests).

use std::collections::{BTreeMap, VecDeque};

use crate::mode::LockMode;

/// Transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId(pub u64);

/// Lockable granule identifier (0-based, `< ltot`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GranuleId(pub u64);

/// Result of a lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held (possibly upgraded).
    Granted,
    /// The request was queued; `blockers` are the transactions it waits
    /// behind (granted holders plus incompatible earlier waiters).
    Queued {
        /// Transactions this request is waiting on, deduplicated, in
        /// grant-group-then-queue order.
        blockers: Vec<TxnId>,
    },
}

#[derive(Clone, Debug)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
}

#[derive(Default, Debug)]
struct LockEntry {
    granted: Vec<(TxnId, LockMode)>,
    waiting: VecDeque<Waiter>,
}

impl LockEntry {
    fn holder_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.granted
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m)
    }

    fn compatible_with_granted(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted
            .iter()
            .filter(|(t, _)| *t != txn)
            .all(|(_, held)| mode.compatible(*held))
    }
}

/// A lock table (see module docs).
#[derive(Default, Debug)]
pub struct LockTable {
    entries: BTreeMap<GranuleId, LockEntry>,
    /// Granules held per transaction, for O(holdings) release.
    holdings: BTreeMap<TxnId, Vec<GranuleId>>,
    grants: u64,
    waits: u64,
}

impl LockTable {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_holding(holdings: &mut BTreeMap<TxnId, Vec<GranuleId>>, txn: TxnId, granule: GranuleId) {
        let v = holdings.entry(txn).or_default();
        if !v.contains(&granule) {
            v.push(granule);
        }
    }

    /// Request `granule` in `mode` for `txn`.
    ///
    /// Re-requests by a holder upgrade to the supremum mode. A request by
    /// a transaction that is *already waiting* on this granule is a
    /// protocol error and panics in debug builds.
    pub fn lock(&mut self, txn: TxnId, granule: GranuleId, mode: LockMode) -> LockOutcome {
        let entry = self.entries.entry(granule).or_default();
        debug_assert!(
            !entry.waiting.iter().any(|w| w.txn == txn),
            "{txn:?} requested {granule:?} while already waiting on it"
        );

        if let Some(held) = entry.holder_mode(txn) {
            // Upgrade path: jumps the queue but must respect other holders.
            let target = held.supremum(mode);
            if target == held {
                return LockOutcome::Granted;
            }
            if entry.compatible_with_granted(txn, target) {
                for (t, m) in &mut entry.granted {
                    if *t == txn {
                        *m = target;
                    }
                }
                self.grants += 1;
                return LockOutcome::Granted;
            }
            let blockers = Self::collect_blockers(entry, txn, target);
            entry.waiting.push_back(Waiter { txn, mode: target });
            self.waits += 1;
            return LockOutcome::Queued { blockers };
        }

        if entry.waiting.is_empty() && entry.compatible_with_granted(txn, mode) {
            entry.granted.push((txn, mode));
            self.holdings.entry(txn).or_default().push(granule);
            self.grants += 1;
            LockOutcome::Granted
        } else {
            let blockers = Self::collect_blockers(entry, txn, mode);
            entry.waiting.push_back(Waiter { txn, mode });
            self.waits += 1;
            LockOutcome::Queued { blockers }
        }
    }

    /// Non-mutating conflict probe: would `txn` get `granule` in `mode`
    /// right now?
    pub fn would_grant(&self, txn: TxnId, granule: GranuleId, mode: LockMode) -> bool {
        match self.entries.get(&granule) {
            None => true,
            Some(entry) => {
                if let Some(held) = entry.holder_mode(txn) {
                    let target = held.supremum(mode);
                    target == held || entry.compatible_with_granted(txn, target)
                } else {
                    entry.waiting.is_empty() && entry.compatible_with_granted(txn, mode)
                }
            }
        }
    }

    /// The transactions `txn` would wait on if it requested `granule` in
    /// `mode` now (empty if it would be granted).
    pub fn conflicts_with(&self, txn: TxnId, granule: GranuleId, mode: LockMode) -> Vec<TxnId> {
        match self.entries.get(&granule) {
            None => Vec::new(),
            Some(entry) => {
                if self.would_grant(txn, granule, mode) {
                    Vec::new()
                } else {
                    Self::collect_blockers(entry, txn, mode)
                }
            }
        }
    }

    fn collect_blockers(entry: &LockEntry, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        let mut blockers: Vec<TxnId> = Vec::new();
        for (t, held) in &entry.granted {
            if *t != txn && !mode.compatible(*held) && !blockers.contains(t) {
                blockers.push(*t);
            }
        }
        for w in &entry.waiting {
            if w.txn != txn && !mode.compatible(w.mode) && !blockers.contains(&w.txn) {
                blockers.push(w.txn);
            }
        }
        // FIFO order alone can block (compatible request behind an
        // incompatible waiter): fall back to the queue head.
        if blockers.is_empty() {
            if let Some(w) = entry.waiting.front() {
                blockers.push(w.txn);
            }
        }
        blockers
    }

    /// Release `granule` for `txn`. Returns the waiters granted as a
    /// result, in grant order. Releasing a granule not held is a no-op
    /// (idempotent release simplifies callers).
    pub fn unlock(&mut self, txn: TxnId, granule: GranuleId) -> Vec<(TxnId, LockMode)> {
        let Some(entry) = self.entries.get_mut(&granule) else {
            return Vec::new();
        };
        let before = entry.granted.len();
        entry.granted.retain(|(t, _)| *t != txn);
        if entry.granted.len() == before {
            return Vec::new();
        }
        if let Some(h) = self.holdings.get_mut(&txn) {
            h.retain(|g| *g != granule);
        }
        let granted = Self::promote(entry, &mut self.grants);
        for (t, _) in &granted {
            Self::add_holding(&mut self.holdings, *t, granule);
        }
        if entry.granted.is_empty() && entry.waiting.is_empty() {
            self.entries.remove(&granule);
        }
        granted
    }

    /// Release every granule held by `txn` and remove it from any wait
    /// queues. Returns all waiters granted as a result.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, GranuleId, LockMode)> {
        let held = self.holdings.remove(&txn).unwrap_or_default();
        let mut promoted = Vec::new();
        for granule in held {
            let Some(entry) = self.entries.get_mut(&granule) else {
                continue;
            };
            entry.granted.retain(|(t, _)| *t != txn);
            for (t, m) in Self::promote(entry, &mut self.grants) {
                Self::add_holding(&mut self.holdings, t, granule);
                promoted.push((t, granule, m));
            }
            if entry.granted.is_empty() && entry.waiting.is_empty() {
                self.entries.remove(&granule);
            }
        }
        // Drop any wait-queue entries (aborted / departing transaction).
        self.cancel_waits(txn, &mut promoted);
        promoted
    }

    /// Remove `txn` from every wait queue (abort while blocked). Any
    /// waiters unblocked by the removal are granted and appended to `out`.
    fn cancel_waits(&mut self, txn: TxnId, out: &mut Vec<(TxnId, GranuleId, LockMode)>) {
        let granules: Vec<GranuleId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.waiting.iter().any(|w| w.txn == txn))
            .map(|(g, _)| *g)
            .collect();
        for granule in granules {
            let Some(entry) = self.entries.get_mut(&granule) else {
                continue;
            };
            entry.waiting.retain(|w| w.txn != txn);
            for (t, m) in Self::promote(entry, &mut self.grants) {
                Self::add_holding(&mut self.holdings, t, granule);
                out.push((t, granule, m));
            }
            if entry.granted.is_empty() && entry.waiting.is_empty() {
                self.entries.remove(&granule);
            }
        }
    }

    /// Grant the longest compatible prefix of the wait queue.
    fn promote(entry: &mut LockEntry, grants: &mut u64) -> Vec<(TxnId, LockMode)> {
        let mut granted = Vec::new();
        while let Some(w) = entry.waiting.front() {
            let ok = entry
                .granted
                .iter()
                .filter(|(t, _)| *t != w.txn)
                .all(|(_, held)| w.mode.compatible(*held));
            if !ok {
                break;
            }
            let w = w.clone();
            entry.waiting.pop_front();
            // An upgrading waiter replaces its old entry.
            entry.granted.retain(|(t, _)| *t != w.txn);
            entry.granted.push((w.txn, w.mode));
            *grants += 1;
            granted.push((w.txn, w.mode));
        }
        granted
    }

    /// Mode in which `txn` holds `granule`, if any.
    pub fn held_mode(&self, txn: TxnId, granule: GranuleId) -> Option<LockMode> {
        self.entries.get(&granule).and_then(|e| e.holder_mode(txn))
    }

    /// Granules currently held by `txn`.
    pub fn holdings(&self, txn: TxnId) -> &[GranuleId] {
        self.holdings.get(&txn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of granules with at least one holder or waiter.
    pub fn active_granules(&self) -> usize {
        self.entries.len()
    }

    /// Total grants performed (including upgrades and promotions).
    pub fn grant_count(&self) -> u64 {
        self.grants
    }

    /// Total requests that had to queue.
    pub fn wait_count(&self) -> u64 {
        self.waits
    }

    /// Check internal invariants; returns a description of the first
    /// violation. Used by property tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (g, e) in &self.entries {
            // 1. All granted holders pairwise compatible.
            for i in 0..e.granted.len() {
                for j in (i + 1)..e.granted.len() {
                    let (t1, m1) = e.granted[i];
                    let (t2, m2) = e.granted[j];
                    if t1 == t2 {
                        return Err(format!("{t1:?} granted twice on {g:?}"));
                    }
                    if !m1.compatible(m2) {
                        return Err(format!(
                            "incompatible holders on {g:?}: {t1:?}:{m1} vs {t2:?}:{m2}"
                        ));
                    }
                }
            }
            // 2. Queue head must actually conflict (no lost wakeup).
            if let Some(w) = e.waiting.front() {
                let ok = e
                    .granted
                    .iter()
                    .filter(|(t, _)| *t != w.txn)
                    .all(|(_, held)| w.mode.compatible(*held));
                if ok {
                    return Err(format!(
                        "queue head {:?} on {g:?} is compatible but not granted",
                        w.txn
                    ));
                }
            }
            // 3. No empty entries are retained.
            if e.granted.is_empty() && e.waiting.is_empty() {
                return Err(format!("empty entry retained for {g:?}"));
            }
            // 4. holdings index consistent with granted groups.
            for (t, _) in &e.granted {
                if !self.holdings.get(t).is_some_and(|h| h.contains(g)) {
                    return Err(format!("{t:?} granted on {g:?} but missing from holdings"));
                }
            }
        }
        for (t, hs) in &self.holdings {
            let mut sorted = hs.clone();
            sorted.sort();
            sorted.dedup();
            if sorted.len() != hs.len() {
                return Err(format!("duplicate holdings entries for {t:?}"));
            }
            for g in hs {
                let ok = self
                    .entries
                    .get(g)
                    .is_some_and(|e| e.holder_mode(*t).is_some());
                if !ok {
                    return Err(format!("{t:?} holdings list {g:?} but not granted"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }
    fn g(n: u64) -> GranuleId {
        GranuleId(n)
    }

    #[test]
    fn exclusive_conflict_queues_fifo() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), X), LockOutcome::Granted);
        let out = lt.lock(t(2), g(0), X);
        assert_eq!(
            out,
            LockOutcome::Queued {
                blockers: vec![t(1)]
            }
        );
        let out = lt.lock(t(3), g(0), X);
        assert!(matches!(out, LockOutcome::Queued { .. }));
        lt.check_invariants().unwrap();

        let granted = lt.unlock(t(1), g(0));
        assert_eq!(granted, vec![(t(2), X)]);
        let granted = lt.unlock(t(2), g(0));
        assert_eq!(granted, vec![(t(3), X)]);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lt = LockTable::new();
        for i in 1..=5 {
            assert_eq!(lt.lock(t(i), g(0), S), LockOutcome::Granted);
        }
        lt.check_invariants().unwrap();
        // An X request queues behind all of them.
        let out = lt.lock(t(9), g(0), X);
        match out {
            LockOutcome::Queued { blockers } => assert_eq!(blockers.len(), 5),
            other => panic!("expected queue, got {other:?}"),
        }
    }

    #[test]
    fn fifo_prevents_reader_starvation_of_writers() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert!(matches!(lt.lock(t(2), g(0), X), LockOutcome::Queued { .. }));
        // A later S must queue behind the X even though it is compatible
        // with the granted group.
        let out = lt.lock(t(3), g(0), S);
        match out {
            LockOutcome::Queued { blockers } => assert_eq!(blockers, vec![t(2)]),
            other => panic!("expected queue, got {other:?}"),
        }
        // Release the reader: X is granted alone; S still waits.
        let granted = lt.unlock(t(1), g(0));
        assert_eq!(granted, vec![(t(2), X)]);
        assert!(lt.held_mode(t(3), g(0)).is_none());
        // Release the writer: S finally granted.
        let granted = lt.unlock(t(2), g(0));
        assert_eq!(granted, vec![(t(3), S)]);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn batch_promotion_of_compatible_prefix() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), X), LockOutcome::Granted);
        for i in 2..=4 {
            assert!(matches!(lt.lock(t(i), g(0), S), LockOutcome::Queued { .. }));
        }
        assert!(matches!(lt.lock(t(5), g(0), X), LockOutcome::Queued { .. }));
        let granted = lt.unlock(t(1), g(0));
        // The three S waiters are admitted together; the X stays queued.
        assert_eq!(granted, vec![(t(2), S), (t(3), S), (t(4), S)]);
        assert!(lt.held_mode(t(5), g(0)).is_none());
        lt.check_invariants().unwrap();
    }

    #[test]
    fn rerequest_same_mode_is_granted() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert_eq!(lt.holdings(t(1)), &[g(0)]);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn upgrade_succeeds_when_alone() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert_eq!(lt.lock(t(1), g(0), X), LockOutcome::Granted);
        assert_eq!(lt.held_mode(t(1), g(0)), Some(X));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn upgrade_blocks_on_other_reader() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert_eq!(lt.lock(t(2), g(0), S), LockOutcome::Granted);
        let out = lt.lock(t(1), g(0), X);
        assert_eq!(
            out,
            LockOutcome::Queued {
                blockers: vec![t(2)]
            }
        );
        // When the other reader leaves, the upgrade is granted as X.
        let granted = lt.unlock(t(2), g(0));
        assert_eq!(granted, vec![(t(1), X)]);
        assert_eq!(lt.held_mode(t(1), g(0)), Some(X));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn release_all_frees_everything_and_promotes() {
        let mut lt = LockTable::new();
        for i in 0..10 {
            assert_eq!(lt.lock(t(1), g(i), X), LockOutcome::Granted);
        }
        assert!(matches!(lt.lock(t(2), g(3), X), LockOutcome::Queued { .. }));
        assert!(matches!(lt.lock(t(3), g(7), S), LockOutcome::Queued { .. }));
        let promoted = lt.release_all(t(1));
        let mut promoted_txns: Vec<TxnId> = promoted.iter().map(|(t, _, _)| *t).collect();
        promoted_txns.sort();
        assert_eq!(promoted_txns, vec![t(2), t(3)]);
        assert!(lt.holdings(t(1)).is_empty());
        assert_eq!(lt.held_mode(t(2), g(3)), Some(X));
        assert_eq!(lt.held_mode(t(3), g(7)), Some(S));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn release_all_cancels_pending_waits() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), X), LockOutcome::Granted);
        assert!(matches!(lt.lock(t(2), g(0), X), LockOutcome::Queued { .. }));
        assert!(matches!(lt.lock(t(3), g(0), X), LockOutcome::Queued { .. }));
        // t2 aborts while waiting; t3 must not be lost behind it.
        let promoted = lt.release_all(t(2));
        assert!(promoted.is_empty());
        let granted = lt.unlock(t(1), g(0));
        assert_eq!(granted, vec![(t(3), X)]);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn unlock_unheld_is_noop() {
        let mut lt = LockTable::new();
        assert!(lt.unlock(t(1), g(0)).is_empty());
        assert_eq!(lt.lock(t(1), g(0), S), LockOutcome::Granted);
        assert!(lt.unlock(t(2), g(0)).is_empty());
        assert_eq!(lt.held_mode(t(1), g(0)), Some(S));
    }

    #[test]
    fn intention_modes_follow_matrix() {
        let mut lt = LockTable::new();
        assert_eq!(lt.lock(t(1), g(0), IX), LockOutcome::Granted);
        assert_eq!(lt.lock(t(2), g(0), IX), LockOutcome::Granted);
        assert_eq!(lt.lock(t(3), g(0), IS), LockOutcome::Granted);
        assert!(matches!(lt.lock(t(4), g(0), S), LockOutcome::Queued { .. }));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn counters_track_activity() {
        let mut lt = LockTable::new();
        lt.lock(t(1), g(0), X);
        lt.lock(t(2), g(0), X);
        assert_eq!(lt.grant_count(), 1);
        assert_eq!(lt.wait_count(), 1);
        lt.unlock(t(1), g(0));
        assert_eq!(lt.grant_count(), 2); // promotion counts as a grant
    }

    #[test]
    fn entries_are_garbage_collected() {
        let mut lt = LockTable::new();
        lt.lock(t(1), g(0), X);
        assert_eq!(lt.active_granules(), 1);
        lt.unlock(t(1), g(0));
        assert_eq!(lt.active_granules(), 0);
    }

    #[test]
    fn would_grant_probe_matches_lock() {
        let mut lt = LockTable::new();
        assert!(lt.would_grant(t(1), g(0), X));
        lt.lock(t(1), g(0), S);
        assert!(lt.would_grant(t(2), g(0), S));
        assert!(!lt.would_grant(t(2), g(0), X));
        assert!(lt.would_grant(t(1), g(0), X)); // upgrade when alone
        lt.lock(t(2), g(0), S);
        assert!(!lt.would_grant(t(1), g(0), X)); // upgrade blocked by t2
        assert_eq!(lt.conflicts_with(t(3), g(0), X), vec![t(1), t(2)]);
    }
}
