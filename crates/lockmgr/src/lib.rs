//! # lockgran-lockmgr — a real lock manager
//!
//! The paper *approximates* lock conflicts probabilistically and never
//! builds a lock table. This crate builds the real thing, for two
//! reasons:
//!
//! 1. **Validation.** `lockgran-core` offers an explicit conflict model
//!    backed by this lock table; comparing it against the paper's
//!    probabilistic model quantifies how much the approximation matters
//!    (an ablation the paper could not run).
//! 2. **Substrate completeness.** A locking-granularity library that a
//!    downstream user would adopt needs an actual lock manager, not just a
//!    coin flip.
//!
//! Components:
//!
//! * [`mode`] — lock modes `S`/`X` plus the intention modes `IS`/`IX`/`SIX`
//!   with Gray's compatibility matrix.
//! * [`table`] — an ordered-map lock table with granted groups and FIFO wait
//!   queues (no starvation: a request conflicts with earlier waiters too).
//! * [`conservative`] — static (pre-declaration) locking, the protocol the
//!   paper simulates: all locks are acquired before any resource is used,
//!   so deadlock is impossible.
//! * [`twophase`] — incremental two-phase locking with a waits-for graph
//!   and deadlock detection (extension beyond the paper).
//! * [`deadlock`] — the waits-for graph and cycle detection.
//! * [`hierarchy`] — multi-granularity (intention) locking over a granule
//!   tree, mirroring the paper's closing remark that "providing
//!   granularity at the block level and at the file level, as is done in
//!   the Gamma database machine, may be adequate".
//! * [`escalation`] — adaptive lock escalation over that hierarchy: the
//!   dynamic counterpart of the paper's static granule-size sweep
//!   (extension).
//! * [`sharded`] — a thread-safe sharded try-lock table, the production
//!   shape of a lock manager (extension; stress-tested under real
//!   threads).
//! * [`reference`] — a naive ordered-map lock table with identical
//!   semantics, the oracle for the differential property test pinning
//!   [`table`]'s pooled implementation to an executable specification.
//!
//! ## Production status
//!
//! [`mode`], [`table`], [`conservative`], [`hierarchy`], [`escalation`],
//! [`twophase`], and [`deadlock`] are live production code: the first
//! five back the explicit and hierarchical conflict models in
//! `lockgran-core` (extB/extD/extG/extH sweeps), and the last two back
//! the incremental-2PL `TwoPhaseConflict` model (extI sweeps, the
//! `micro_twophase` bench) — the first half of ROADMAP item 3.
//! [`sharded`] is not yet reachable from the simulator's event loop —
//! it is the substrate for a thread-safe lock-manager stage, kept fully
//! unit-tested rather than suppressed; nothing in this crate carries a
//! `dead_code` allow.

#![warn(missing_docs)]

pub mod conservative;
pub mod deadlock;
pub mod escalation;
pub mod hierarchy;
pub mod mode;
pub mod reference;
pub mod sharded;
pub mod table;
pub mod twophase;

pub use conservative::{ConservativeOutcome, ConservativeScheduler};
pub use deadlock::WaitsForGraph;
pub use escalation::{
    escalate_predeclared, escalate_predeclared_into, EscalationManager, EscalationOutcome,
    EscalationPolicy,
};
pub use hierarchy::{GranuleTree, HierarchyLevel, NodeId};
pub use mode::LockMode;
pub use reference::ReferenceLockTable;
pub use sharded::ShardedLockTable;
pub use table::{GranuleId, LockOutcome, LockTable, TxnId};
pub use twophase::{
    AcquireEffects, AcquireOutcome, AcquireStatus, RetryOutcome, TwoPhaseScheduler,
};
