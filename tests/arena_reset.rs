//! Arena reuse (`RunArena`) must be observationally invisible.
//!
//! The capacity-scale engine recycles one `Executor` + `System` pair per
//! worker thread across `(config, seed)` runs instead of rebuilding them.
//! The contract is *reset-equals-fresh*: every run through an arena is
//! bit-identical to `sim::run` on a fresh system, no matter what ran in
//! the arena before — only heap capacities may differ. These tests drive
//! one arena through a gauntlet of configurations (all three conflict
//! models, failures, admission control, changed geometry) and compare
//! every run's full `RunMetrics` JSON against fresh construction.

use lockgran_core::{
    sim, ConflictMode, HierarchySpec, LockDistribution, ModelConfig, RunArena, ServiceVariability,
};
use lockgran_sim::ToJson;
use lockgran_workload::{FailureSpec, Partitioning, Placement};

/// A short but non-trivial baseline.
fn quick() -> ModelConfig {
    ModelConfig::table1().with_tmax(800.0)
}

/// The gauntlet: every configuration family the model supports, in an
/// order that forces the reset paths to cross conflict modes, geometry
/// changes, and optional subsystems (failures, MPL caps, warm-up).
fn gauntlet() -> Vec<(ModelConfig, u64)> {
    vec![
        (quick(), 11),
        // Same config, different seed: RNG re-derivation only.
        (quick(), 12),
        // Geometry change: new ltot invalidates the Yao memo.
        (quick().with_ltot(500).with_placement(Placement::Random), 13),
        // Explicit lock table, random partitioning.
        (
            quick()
                .with_conflict(ConflictMode::Explicit)
                .with_partitioning(Partitioning::Random),
            14,
        ),
        // Hierarchical with escalation.
        (
            quick()
                .with_conflict(ConflictMode::Hierarchical)
                .with_hierarchy(Some(
                    HierarchySpec::default().with_escalation_threshold(Some(4)),
                )),
            15,
        ),
        // Hierarchical again with a different area count (tree rebuild).
        (
            quick()
                .with_conflict(ConflictMode::Hierarchical)
                .with_hierarchy(Some(HierarchySpec::default().with_areas(25))),
            16,
        ),
        // Back to probabilistic (mode change in the other direction),
        // with warm-up, admission control and service variability.
        (
            quick()
                .with_warmup(200.0)
                .with_mpl_limit(Some(8))
                .with_service(ServiceVariability::Exponential),
            17,
        ),
        // Failure extension plus a different lock distribution.
        (
            quick()
                .with_failure(Some(FailureSpec::new(150.0, 30.0)))
                .with_lock_distribution(LockDistribution::SingleProcessor),
            18,
        ),
        // Fewer processors (server vectors shrink) and coarse locking.
        (quick().with_npros(4).with_ltot(2), 19),
    ]
}

#[test]
fn arena_runs_are_bit_identical_to_fresh_runs() {
    let mut arena = RunArena::new();
    for (i, (cfg, seed)) in gauntlet().into_iter().enumerate() {
        let recycled = arena.run(&cfg, seed).to_json().to_string();
        let fresh = sim::run(&cfg, seed).to_json().to_string();
        assert_eq!(recycled, fresh, "gauntlet step {i} diverged from fresh");
    }
}

#[test]
fn arena_repeat_of_same_config_is_bit_identical() {
    // The same (cfg, seed) through one arena twice in a row — the purest
    // reset test: every in-place path (slab drain, conflict reset, memo
    // retention, FEL clear) fires with *matching* geometry.
    let mut arena = RunArena::new();
    for (cfg, seed) in gauntlet() {
        let first = arena.run(&cfg, seed).to_json().to_string();
        let second = arena.run(&cfg, seed).to_json().to_string();
        assert_eq!(first, second);
    }
}

#[test]
fn arena_order_does_not_matter() {
    // Metrics of a run must not depend on the arena's history: run the
    // gauntlet forward and backward through two arenas and compare each
    // point pairwise.
    let steps = gauntlet();
    let mut forward = RunArena::new();
    let fwd: Vec<String> = steps
        .iter()
        .map(|(cfg, seed)| forward.run(cfg, *seed).to_json().to_string())
        .collect();
    let mut backward = RunArena::new();
    let mut bwd: Vec<String> = steps
        .iter()
        .rev()
        .map(|(cfg, seed)| backward.run(cfg, *seed).to_json().to_string())
        .collect();
    bwd.reverse();
    assert_eq!(fwd, bwd);
}
