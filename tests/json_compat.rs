//! Wire-format compatibility of the in-tree JSON layer.
//!
//! The checked-in batch file predates the in-tree serializer and still
//! uses the old derive-era shape (externally tagged `size` variants,
//! optional fields omitted). It must keep parsing, and what we emit
//! must re-parse to the identical configuration.

use lockgran::prelude::*;
use lockgran::sim::{json, FromJson, ToJson};

fn sample_batch_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("configs/sample_batch.json")
}

/// The shipped `configs/sample_batch.json` parses, validates, and
/// survives an emit → parse round trip unchanged.
#[test]
fn sample_batch_round_trips() {
    let text = std::fs::read_to_string(sample_batch_path()).unwrap();
    let value = json::parse(&text).unwrap();
    let configs: Vec<ModelConfig> = FromJson::from_json(&value).unwrap();
    assert_eq!(configs.len(), 3);
    for cfg in &configs {
        cfg.validate().unwrap();
        let emitted = cfg.to_json().pretty();
        let back = ModelConfig::from_json(&json::parse(&emitted).unwrap()).unwrap();
        assert_eq!(&back, cfg, "emit/parse round trip changed the config");
    }
    // Spot-check that omitted optional fields took their defaults and
    // present ones were honoured.
    assert!(configs[0].lock_preemption);
    assert_eq!(configs[0].mpl_limit, None);
    assert_eq!(configs[1].mpl_limit, Some(20));
    assert!(configs[2].hot_spot.is_some());
    assert_eq!(configs[2].service, ServiceVariability::Exponential);
}

/// Byte-exact golden emit: the pretty printer reproduces the previous
/// serializer's layout (2-space indent, declaration field order,
/// `null` for absent options, trailing `.0` on whole floats).
#[test]
fn table1_pretty_emit_is_stable() {
    let expected = "\
{
  \"dbsize\": 5000,
  \"ltot\": 100,
  \"ntrans\": 10,
  \"size\": {
    \"Uniform\": {
      \"max\": 500
    }
  },
  \"cputime\": 0.05,
  \"iotime\": 0.2,
  \"lcputime\": 0.01,
  \"liotime\": 0.2,
  \"npros\": 10,
  \"tmax\": 10000.0,
  \"placement\": \"Best\",
  \"partitioning\": \"Horizontal\",
  \"conflict\": \"Probabilistic\",
  \"lock_distribution\": \"PerOperation\",
  \"service\": \"Deterministic\",
  \"discipline\": \"Fcfs\",
  \"hot_spot\": null,
  \"lock_preemption\": true,
  \"mpl_limit\": null,
  \"warmup\": 0.0,
  \"failure\": null,
  \"hierarchy\": null
}";
    assert_eq!(ModelConfig::table1().to_json().pretty(), expected);
}
