//! Batch-means response-time statistics: cross-checks at paper scale.
//!
//! The engine estimates the steady-state mean response time two ways:
//!
//! * **cross-replication** — independent runs, one `response_time` each,
//!   aggregated by a [`Tally`] (the harness's historical method);
//! * **batch means** — a single long run, consecutive completions grouped
//!   into doubling batches ([`BatchMeans`]), surfaced per run as
//!   `RunMetrics::response_ci95_batch` with O(1) memory at any horizon.
//!
//! Both estimate the same quantity, so (a) rebuilding the estimator from
//! the protocol trace must reproduce the in-run numbers *bit for bit*,
//! and (b) a Welch two-sample test between the batch means and the
//! replication means must not reject at paper scale.

use std::collections::BTreeMap;

use lockgran_core::{sim, ModelConfig, TraceEvent};
use lockgran_sim::stats::welch::welch_t;
use lockgran_sim::{BatchMeans, Tally, Time};

/// Paper Table 1 with a warm-up and a horizon long enough for dozens of
/// completed batches.
fn cfg() -> ModelConfig {
    ModelConfig::table1().with_warmup(500.0).with_tmax(4_000.0)
}

/// Replay a traced run's measured response times through `f`, in
/// completion order — exactly the stream `System::complete` records.
fn measured_responses(cfg: &ModelConfig, seed: u64, mut f: impl FnMut(f64)) {
    let (_, trace) = sim::run_traced(cfg, seed);
    let warmup = Time::from_units(cfg.warmup);
    let mut arrived: BTreeMap<u64, Time> = BTreeMap::new();
    for (now, ev) in &trace.events {
        match ev {
            TraceEvent::Arrived { serial } => {
                arrived.insert(*serial, *now);
            }
            TraceEvent::Completed { serial } if *now >= warmup => {
                let at = arrived[serial];
                f(now.since(at).units());
            }
            _ => {}
        }
    }
}

#[test]
fn in_run_batch_ci_matches_external_reconstruction_bitwise() {
    // Rebuild the production estimator (doubling mode, initial size 32,
    // cap 64 — the constants `System` wires in) from the trace and hold
    // the surfaced metrics to bit-identity.
    let cfg = cfg();
    let metrics = sim::run(&cfg, 4242);
    let mut bm = BatchMeans::with_doubling(32, 64);
    let mut tally = Tally::new();
    measured_responses(&cfg, 4242, |resp| {
        bm.record(resp);
        tally.record(resp);
    });
    assert!(metrics.response_batches >= 4, "too few batches to test");
    assert_eq!(metrics.response_batches, bm.batches());
    assert_eq!(
        metrics.response_ci95_batch.to_bits(),
        bm.ci95_half_width().to_bits(),
        "in-run batch CI diverged from the trace reconstruction"
    );
    // The plain tally over the same stream is the surfaced mean.
    assert_eq!(metrics.response_time.to_bits(), tally.mean().to_bits());
    // And the batch grand mean (partial batch excluded) stays close to it.
    let rel = (bm.mean() - tally.mean()).abs() / tally.mean();
    assert!(rel < 0.05, "batch mean off by {rel} from sample mean");
}

#[test]
fn batch_means_agree_with_cross_replication_welch() {
    // Side A: batch means from one long run. Side B: eight independent
    // replications' response-time means. A Welch t between them must not
    // reject (the seeds are fixed, so this is deterministic).
    let cfg = cfg();
    let mut bm = BatchMeans::with_doubling(32, 64);
    measured_responses(&cfg, 7, |resp| bm.record(resp));
    assert!(bm.batches() >= 8, "only {} batches", bm.batches());

    let mut reps = Tally::new();
    for seed in 100..108 {
        reps.record(sim::run(&cfg, seed).response_time);
    }

    let (t, df) = welch_t(
        bm.mean(),
        bm.variance(),
        bm.batches(),
        reps.mean(),
        reps.variance(),
        reps.count(),
    );
    assert!(df >= 2.0, "degenerate Welch df {df}");
    assert!(
        t.abs() < 3.0,
        "batch-means estimate disagrees with replications: t={t}, df={df}, \
         batch mean {} vs replication mean {}",
        bm.mean(),
        reps.mean()
    );

    // The two intervals for the same steady-state mean must overlap.
    let (lo_a, hi_a) = (
        bm.mean() - bm.ci95_half_width(),
        bm.mean() + bm.ci95_half_width(),
    );
    let (lo_b, hi_b) = (
        reps.mean() - reps.ci95_half_width(),
        reps.mean() + reps.ci95_half_width(),
    );
    assert!(
        lo_a <= hi_b && lo_b <= hi_a,
        "disjoint CIs: batch [{lo_a}, {hi_a}] vs replication [{lo_b}, {hi_b}]"
    );
}
