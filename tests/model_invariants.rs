//! Cross-crate integration tests: conservation laws and internal
//! consistency of the model, checked over a grid of configurations.

use lockgran::prelude::*;
use lockgran::workload::SizeDistribution;

fn grid() -> Vec<ModelConfig> {
    let mut v = Vec::new();
    for npros in [1u32, 4, 16] {
        for ltot in [1u64, 50, 5000] {
            for placement in [Placement::Best, Placement::Worst, Placement::Random] {
                v.push(
                    ModelConfig::table1()
                        .with_npros(npros)
                        .with_ltot(ltot)
                        .with_placement(placement)
                        .with_tmax(800.0),
                );
            }
        }
    }
    v
}

/// Every configuration yields internally consistent metrics.
#[test]
fn metrics_consistency_across_grid() {
    for (i, cfg) in grid().into_iter().enumerate() {
        let m = run(&cfg, i as u64);
        m.check_consistency(cfg.npros)
            .unwrap_or_else(|e| panic!("config #{i}: {e}"));
    }
}

/// Work conservation: useful I/O busy time equals completed+in-flight
/// transaction I/O demand; bound it by what throughput implies.
#[test]
fn useful_io_matches_completed_work() {
    let cfg = ModelConfig::table1().with_tmax(2_000.0);
    let m = run(&cfg, 5);
    // Completed transactions did totcom * E[NU] * iotime of I/O work; the
    // measured useful I/O (summed over processors) must be at least that
    // minus one multiprogramming level of in-flight work, and at most
    // that plus it.
    let mean_nu = 250.5;
    let expected = m.totcom as f64 * mean_nu * cfg.iotime;
    let slack = f64::from(cfg.ntrans) * 500.0 * cfg.iotime; // max txn size
    let measured = m.usefulios * f64::from(cfg.npros);
    assert!(
        (measured - expected).abs() < slack,
        "measured {measured} vs expected {expected} (slack {slack})"
    );
}

/// Lock overhead conservation: lockcpus equals (attempts * LU * lcputime)
/// in expectation; check the exact per-run identity via attempt counts.
#[test]
fn lock_overhead_proportional_to_attempts() {
    // Fixed-size transactions make LU deterministic: NU = 250,
    // ltot = 100 -> LU = 5 under best placement.
    let cfg = ModelConfig::table1()
        .with_size(SizeDistribution::Fixed { size: 250 })
        .with_tmax(2_000.0);
    let m = run(&cfg, 3);
    let lu = 5.0;
    let expected_cpu = m.lock_attempts as f64 * lu * cfg.lcputime;
    // In-flight attempts at the horizon may be partially charged.
    let slack = f64::from(cfg.ntrans) * lu * (cfg.lcputime + cfg.liotime) + 1.0;
    assert!(
        (m.lockcpus - expected_cpu).abs() <= slack,
        "lockcpus {} vs attempts-implied {expected_cpu}",
        m.lockcpus
    );
}

/// The closed model: completions per unit time match mean-active ×
/// service-rate intuition within a loose factor (Little's-law sanity).
#[test]
fn littles_law_sanity() {
    let cfg = ModelConfig::table1().with_tmax(3_000.0);
    let m = run(&cfg, 1);
    // L = lambda * W with L = ntrans (every resident transaction counts
    // toward response time).
    let l = f64::from(cfg.ntrans);
    let lambda_w = m.throughput * m.response_time;
    assert!(
        (lambda_w - l).abs() / l < 0.15,
        "Little's law: lambda*W = {lambda_w}, L = {l}"
    );
}

/// Explicit conflict mode satisfies the same conservation checks.
#[test]
fn explicit_mode_consistency() {
    for seed in 0..3 {
        let cfg = ModelConfig::table1()
            .with_conflict(ConflictMode::Explicit)
            .with_tmax(800.0);
        let m = run(&cfg, seed);
        m.check_consistency(cfg.npros).unwrap();
        assert!(m.totcom > 0);
        let lw = m.throughput * m.response_time;
        assert!(
            (lw - 10.0).abs() / 10.0 < 0.25,
            "Little's law in explicit mode: {lw}"
        );
    }
}

/// Degenerate parameter corners run to completion and stay consistent.
#[test]
fn degenerate_corners() {
    // Single transaction, single processor, single lock.
    let m = run(
        &ModelConfig::table1()
            .with_ntrans(1)
            .with_npros(1)
            .with_ltot(1)
            .with_tmax(500.0),
        0,
    );
    assert!(m.totcom > 0);
    assert_eq!(m.denial_rate, 0.0, "a lone transaction can never be denied");
    m.check_consistency(1).unwrap();

    // Free locking everywhere.
    let mut cfg = ModelConfig::table1().with_tmax(500.0);
    cfg.lcputime = 0.0;
    cfg.liotime = 0.0;
    let m = run(&cfg, 0);
    assert_eq!(m.lockcpus, 0.0);
    assert_eq!(m.lockios, 0.0);
    assert!(m.totcom > 0);

    // Transactions as large as the database.
    let m = run(
        &ModelConfig::table1()
            .with_size(SizeDistribution::Fixed { size: 5000 })
            .with_tmax(2_000.0),
        0,
    );
    assert!(m.totcom > 0);
    m.check_consistency(10).unwrap();
}

/// All three lock-distribution policies conserve total lock overhead.
#[test]
fn lock_distribution_conserves_overhead() {
    use lockgran::core::config::LockDistribution;
    let base = ModelConfig::table1()
        .with_size(SizeDistribution::Fixed { size: 250 })
        .with_tmax(1_000.0);
    let mut per_attempt = Vec::new();
    for d in LockDistribution::ALL {
        let m = run(&base.clone().with_lock_distribution(d), 2);
        // lockcpus per attempt must equal LU * lcputime = 0.05 regardless
        // of how the work is spread (up to in-flight truncation).
        per_attempt.push(m.lockcpus / m.lock_attempts as f64);
    }
    for w in per_attempt.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 0.005,
            "per-attempt lock CPU differs across distributions: {per_attempt:?}"
        );
    }
}
