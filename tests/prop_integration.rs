//! Property-based integration tests over random model configurations.
//!
//! Strategy-generated configurations exercise the full stack; the
//! properties are the conservation laws that must hold for *every* input,
//! not just the paper's parameter points.

use lockgran::prelude::*;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ModelConfig> {
    (
        1u32..=8,              // npros
        1u32..=24,             // ntrans
        1u64..=2000,           // ltot
        10u64..=400,           // maxtransize
        prop_oneof![
            Just(Placement::Best),
            Just(Placement::Random),
            Just(Placement::Worst)
        ],
        prop_oneof![Just(Partitioning::Horizontal), Just(Partitioning::Random)],
        prop_oneof![
            Just(ConflictMode::Probabilistic),
            Just(ConflictMode::Explicit)
        ],
        0.0f64..0.3,           // liotime
    )
        .prop_map(
            |(npros, ntrans, ltot, maxtransize, placement, partitioning, conflict, liotime)| {
                ModelConfig::table1()
                    .with_npros(npros)
                    .with_ntrans(ntrans)
                    .with_ltot(ltot)
                    .with_maxtransize(maxtransize)
                    .with_placement(placement)
                    .with_partitioning(partitioning)
                    .with_conflict(conflict)
                    .with_liotime((liotime * 100.0).round() / 100.0)
                    .with_tmax(300.0)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated configuration validates, runs, and yields
    /// internally consistent metrics.
    #[test]
    fn any_config_runs_consistently(cfg in arb_config(), seed in 0u64..1000) {
        prop_assert!(cfg.validate().is_ok());
        let m = run(&cfg, seed);
        prop_assert!(m.check_consistency(cfg.npros).is_ok(),
            "{:?}", m.check_consistency(cfg.npros));
        // Busy time cannot exceed capacity.
        prop_assert!(m.totcpus <= f64::from(cfg.npros) * cfg.tmax + 1e-6);
        prop_assert!(m.totios <= f64::from(cfg.npros) * cfg.tmax + 1e-6);
        // Denials imply attempts.
        prop_assert!(m.lock_denials <= m.lock_attempts);
        // Mean active transactions within the multiprogramming level.
        prop_assert!(m.mean_active <= f64::from(cfg.ntrans) + 1e-9);
        prop_assert!(m.mean_blocked <= f64::from(cfg.ntrans) + 1e-9);
    }

    /// Determinism holds for every configuration, not just the baseline.
    #[test]
    fn any_config_is_deterministic(cfg in arb_config(), seed in 0u64..1000) {
        let a = run(&cfg, seed);
        let b = run(&cfg, seed);
        prop_assert_eq!(a.totcom, b.totcom);
        prop_assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        prop_assert_eq!(a.lockios.to_bits(), b.lockios.to_bits());
    }

    /// Response time always satisfies the closed-model lower bound: a
    /// transaction cannot finish faster than its own unqueued demand path
    /// allows on average — and never in zero time.
    #[test]
    fn response_time_positive_and_bounded(cfg in arb_config(), seed in 0u64..1000) {
        let m = run(&cfg, seed);
        if m.totcom > 0 {
            prop_assert!(m.response_time > 0.0);
            prop_assert!(m.response_time <= cfg.tmax);
            prop_assert!(m.response_time_p95 >= 0.0);
        }
    }
}
