//! Property-based integration tests over random model configurations.
//!
//! Seeded [`SimRng`]-generated configurations exercise the full stack;
//! the properties are the conservation laws that must hold for *every*
//! input, not just the paper's parameter points. Every failure is
//! reproducible from the printed case number.

use lockgran::prelude::*;
use lockgran::sim::SimRng;

const CASES: u64 = 24;

fn case_rng(test: &str, case: u64) -> SimRng {
    SimRng::new(0x5EED).split(test).split_index(case)
}

fn random_config(rng: &mut SimRng) -> ModelConfig {
    let npros = rng.uniform_inclusive(1, 8) as u32;
    let ntrans = rng.uniform_inclusive(1, 24) as u32;
    let ltot = rng.uniform_inclusive(1, 2000);
    let maxtransize = rng.uniform_inclusive(10, 400);
    let placement = Placement::ALL[rng.uniform_inclusive(0, 2) as usize];
    let partitioning = Partitioning::ALL[rng.uniform_inclusive(0, 1) as usize];
    let conflict = ConflictMode::ALL[rng.uniform_inclusive(0, 2) as usize];
    // Hierarchy parameters only matter (and only validate) in
    // hierarchical mode; draw them unconditionally to keep the stream
    // layout fixed, attach them conditionally.
    let areas = rng.uniform_inclusive(1, 64);
    let threshold = match rng.uniform_inclusive(0, 3) {
        0 => None,
        t => Some(t * 4),
    };
    let hierarchy = (conflict == ConflictMode::Hierarchical).then(|| {
        HierarchySpec::default()
            .with_areas(areas)
            .with_escalation_threshold(threshold)
    });
    let liotime = (rng.uniform01() * 0.3 * 100.0).round() / 100.0;
    ModelConfig::table1()
        .with_npros(npros)
        .with_ntrans(ntrans)
        .with_ltot(ltot)
        .with_maxtransize(maxtransize)
        .with_placement(placement)
        .with_partitioning(partitioning)
        .with_conflict(conflict)
        .with_hierarchy(hierarchy)
        .with_liotime(liotime)
        .with_tmax(300.0)
}

/// Every generated configuration validates, runs, and yields
/// internally consistent metrics.
#[test]
fn any_config_runs_consistently() {
    for case in 0..CASES {
        let mut rng = case_rng("any_config_runs_consistently", case);
        let cfg = random_config(&mut rng);
        let seed = rng.uniform_inclusive(0, 999);
        assert!(cfg.validate().is_ok(), "case {case}");
        let m = run(&cfg, seed);
        assert!(
            m.check_consistency(cfg.npros).is_ok(),
            "case {case}: {:?}",
            m.check_consistency(cfg.npros)
        );
        // Busy time cannot exceed capacity.
        assert!(
            m.totcpus <= f64::from(cfg.npros) * cfg.tmax + 1e-6,
            "case {case}"
        );
        assert!(
            m.totios <= f64::from(cfg.npros) * cfg.tmax + 1e-6,
            "case {case}"
        );
        // Denials imply attempts.
        assert!(m.lock_denials <= m.lock_attempts, "case {case}");
        // Mean active transactions within the multiprogramming level.
        assert!(m.mean_active <= f64::from(cfg.ntrans) + 1e-9, "case {case}");
        assert!(
            m.mean_blocked <= f64::from(cfg.ntrans) + 1e-9,
            "case {case}"
        );
    }
}

/// Determinism holds for every configuration, not just the baseline.
#[test]
fn any_config_is_deterministic() {
    for case in 0..CASES {
        let mut rng = case_rng("any_config_is_deterministic", case);
        let cfg = random_config(&mut rng);
        let seed = rng.uniform_inclusive(0, 999);
        let a = run(&cfg, seed);
        let b = run(&cfg, seed);
        assert_eq!(a.totcom, b.totcom, "case {case}");
        assert_eq!(
            a.throughput.to_bits(),
            b.throughput.to_bits(),
            "case {case}"
        );
        assert_eq!(a.lockios.to_bits(), b.lockios.to_bits(), "case {case}");
    }
}

/// Response time always satisfies the closed-model lower bound: a
/// transaction cannot finish faster than its own unqueued demand path
/// allows on average — and never in zero time.
#[test]
fn response_time_positive_and_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng("response_time_positive_and_bounded", case);
        let cfg = random_config(&mut rng);
        let seed = rng.uniform_inclusive(0, 999);
        let m = run(&cfg, seed);
        if m.totcom > 0 {
            assert!(m.response_time > 0.0, "case {case}");
            assert!(m.response_time <= cfg.tmax, "case {case}");
            assert!(m.response_time_p95 >= 0.0, "case {case}");
        }
    }
}
