//! Properties of the failure/abort path (failure extension).
//!
//! With a `FailureSpec` enabled, processors fail and repair; every
//! running transaction with a sub-transaction on a failed processor
//! aborts, releases its locks through the ordinary wake path, and
//! re-executes. These tests pin the protocol-level guarantees: locks are
//! acquired/released in strict alternation (released exactly once per
//! grant), the trace satisfies the abort-aware protocol checker, the
//! `aborts`/`failures` counters agree with the trace, and the whole thing
//! is deterministic.

use lockgran::prelude::*;
use lockgran::sim::ToJson;
use lockgran_core::sim::run_traced;
use lockgran_core::TraceEvent;

/// An aggressive failure regime over a short horizon: several failures
/// per processor, so aborts actually happen.
fn failing_config() -> ModelConfig {
    ModelConfig::table1()
        .with_tmax(800.0)
        .with_failure(Some(FailureSpec::new(150.0, 30.0)))
}

#[test]
fn failure_run_satisfies_abort_aware_protocol() {
    let (metrics, trace) = run_traced(&failing_config(), 42);
    trace.check_protocol().unwrap();
    metrics.check_consistency(10).unwrap();
    assert!(
        metrics.failures > 0,
        "the failure regime produced no failures"
    );
    assert!(metrics.aborts > 0, "the failure regime produced no aborts");
}

/// With warmup 0, the metric counters must equal the trace event counts.
#[test]
fn abort_and_failure_counters_match_trace() {
    let (metrics, trace) = run_traced(&failing_config(), 7);
    let aborted = trace
        .events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::Aborted { .. }))
        .count() as u64;
    let failed = trace
        .events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::Failed { .. }))
        .count() as u64;
    assert_eq!(metrics.aborts, aborted);
    assert_eq!(metrics.failures, failed);
}

/// Locks are released exactly once per acquisition: for every
/// transaction, the Granted / Aborted / Completed events alternate
/// strictly — a grant is always closed by exactly one abort or
/// completion before the next grant. A double release or a leaked hold
/// would break the alternation.
#[test]
fn locks_released_exactly_once_per_grant() {
    let (_, trace) = run_traced(&failing_config(), 11);
    let mut serials: Vec<u64> = trace
        .events
        .iter()
        .filter_map(|(_, e)| e.serial())
        .collect();
    serials.sort_unstable();
    serials.dedup();
    let mut saw_abort = false;
    for serial in serials {
        let mut holding = false;
        for e in trace.of(serial) {
            match e {
                TraceEvent::Granted { .. } => {
                    assert!(!holding, "txn {serial}: granted while already holding");
                    holding = true;
                }
                TraceEvent::Aborted { .. } => {
                    assert!(holding, "txn {serial}: aborted while not holding");
                    holding = false;
                    saw_abort = true;
                }
                TraceEvent::Completed { .. } => {
                    assert!(holding, "txn {serial}: completed while not holding");
                    holding = false;
                }
                _ => {}
            }
        }
    }
    assert!(saw_abort, "no abort exercised the alternation check");
}

/// Every failure is eventually followed by the matching repair (within
/// the horizon), and per processor they alternate strictly.
#[test]
fn failures_and_repairs_alternate_per_processor() {
    let (_, trace) = run_traced(&failing_config(), 3);
    for proc in 0..10u32 {
        let mut down = false;
        for (_, e) in &trace.events {
            match e {
                TraceEvent::Failed { proc: p } if *p == proc => {
                    assert!(!down, "proc {proc}: failed while down");
                    down = true;
                }
                TraceEvent::Repaired { proc: p } if *p == proc => {
                    assert!(down, "proc {proc}: repaired while up");
                    down = false;
                }
                _ => {}
            }
        }
    }
}

/// The failure path is deterministic: same seed, same metrics bytes.
#[test]
fn failure_runs_are_deterministic() {
    let a = run(&failing_config(), 99).to_json().to_string();
    let b = run(&failing_config(), 99).to_json().to_string();
    assert_eq!(a, b);
}

/// Without a `FailureSpec` nothing fails and nothing aborts — and the
/// extension fields sit at zero.
#[test]
fn no_failure_spec_means_no_aborts() {
    let cfg = ModelConfig::table1().with_tmax(800.0);
    let (metrics, trace) = run_traced(&cfg, 42);
    assert_eq!(metrics.aborts, 0);
    assert_eq!(metrics.failures, 0);
    assert!(!trace.events.iter().any(|(_, e)| matches!(
        e,
        TraceEvent::Failed { .. } | TraceEvent::Repaired { .. } | TraceEvent::Aborted { .. }
    )));
}
