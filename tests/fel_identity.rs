//! Future-event-list identity: the calendar queue is a pure performance
//! substitution for the binary heap. Both order events by the same stable
//! `(time, seq)` key, so every simulation output — metrics, float
//! rounding, RNG consumption — must be byte-identical across FEL kinds.
//!
//! This is what lets `core::sim::run` default to the calendar queue while
//! every committed artifact (regenerated with the heap in earlier PRs)
//! stays bit-for-bit unchanged.

use lockgran_core::sim::run_with_fel;
use lockgran_core::{ConflictMode, LockDistribution, ModelConfig, ServiceVariability};
use lockgran_sim::{FelKind, ToJson};
use lockgran_workload::{FailureSpec, Partitioning, Placement};

/// Serialize one run to JSON text — byte-identical serialized output is
/// exactly the claim the committed figure artifacts rest on.
fn fingerprint(cfg: &ModelConfig, seed: u64, fel: FelKind) -> String {
    run_with_fel(cfg, seed, fel).to_json().to_string()
}

fn assert_identical(label: &str, cfg: &ModelConfig) {
    for seed in [42, 7, 12345] {
        let heap = fingerprint(cfg, seed, FelKind::Heap);
        let calendar = fingerprint(cfg, seed, FelKind::Calendar);
        assert_eq!(heap, calendar, "{label}, seed {seed}: FEL kinds diverged");
    }
}

/// The Table 1 baseline — the configuration every figure sweeps from —
/// run long enough to push the calendar queue through resize bands.
#[test]
fn table1_baseline_is_fel_independent() {
    assert_identical("table1", &ModelConfig::table1().with_tmax(2_000.0));
}

/// A figure-style granularity sweep: every `(ltot, seed)` cell must match.
/// `ltot = 1` serializes the system (long FEL plateaus); `ltot = 5000`
/// maximizes concurrency (dense FEL) — the two FEL stress extremes.
#[test]
fn ltot_sweep_is_fel_independent() {
    for ltot in [1, 10, 100, 1_000, 5_000] {
        let cfg = ModelConfig::table1().with_ltot(ltot).with_tmax(1_000.0);
        assert_identical(&format!("ltot={ltot}"), &cfg);
    }
}

/// Model variants that exercise every event-producing subsystem: explicit
/// conflicts, random partitioning, worst-case placement, exponential
/// service, per-operation lock distribution, and warm-up snapshots.
#[test]
fn model_variants_are_fel_independent() {
    let base = ModelConfig::table1().with_tmax(1_000.0);
    let variants: Vec<(&str, ModelConfig)> = vec![
        (
            "explicit",
            base.clone().with_conflict(ConflictMode::Explicit),
        ),
        (
            "random-partitioning",
            base.clone().with_partitioning(Partitioning::Random),
        ),
        (
            "worst-placement",
            base.clone().with_placement(Placement::Worst).with_ltot(250),
        ),
        (
            "exponential-service",
            base.clone().with_service(ServiceVariability::Exponential),
        ),
        (
            "per-operation-locks",
            base.clone()
                .with_lock_distribution(LockDistribution::PerOperation),
        ),
        ("warmup", base.clone().with_warmup(300.0)),
        ("uniprocessor", base.clone().with_npros(1)),
    ];
    for (label, cfg) in &variants {
        assert_identical(label, cfg);
    }
}

/// Failures and repairs inject far-future events (repair times) next to
/// near-future ones — the sparse-bucket worst case for a calendar queue.
#[test]
fn failure_runs_are_fel_independent() {
    let cfg = ModelConfig::table1()
        .with_failure(Some(FailureSpec::new(150.0, 30.0)))
        .with_tmax(1_500.0);
    assert_identical("failure", &cfg);
}
