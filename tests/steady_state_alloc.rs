//! Steady-state allocation audit: once a Table 1 run is past its start-up
//! transient, the event loop must touch the heap **zero** times — no
//! per-event, per-transaction, or per-request allocation at all.
//!
//! Every hot-path buffer is recycled: the slab reuses transaction slots
//! and one retired carcass, `TransactionSpec::processors` is drawn
//! in-place, lock/stage share vectors are taken and restored around each
//! submission, conflict waiter lists are recycled through a spare pool,
//! and both FELs reuse their backing storage once capacities settle.
//! This test is the proof: a `#[global_allocator]` wrapper counts every
//! `alloc`/`realloc`, and the count must not move across the measured
//! half of the run.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use lockgran_core::system::System;
use lockgran_core::{ConflictMode, ModelConfig};
use lockgran_sim::{Executor, FelKind, Time};

/// Passthrough allocator that counts heap acquisitions (`alloc` and
/// `realloc`; `dealloc` is free to run — returning memory is not the
/// failure mode this test polices).
struct CountingAlloc;

static HEAP_ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Drive a configuration through a warm half (capacities settle, the
/// calendar queue finds its bucket count, server queues reach their
/// high-water marks, lock-table pools fill) and then a measured half
/// that must perform **exactly zero** heap acquisitions.
fn assert_steady_state_is_silent(cfg: ModelConfig, what: &str) {
    let mut ex = Executor::with_fel(FelKind::Calendar);
    let mut system = System::new(&cfg, 42, &mut ex);
    let horizon = system.tmax();

    // Start-up transient: arrivals fill the slab, buffers and queues grow
    // to their working sizes. Allocation here is expected and amortized.
    let mid = Time::from_units(horizon.units() / 2.0);
    ex.run(&mut system, mid);
    let events_before = ex.events_processed();
    let allocs_before = HEAP_ACQUISITIONS.load(Ordering::Relaxed);

    // Steady state: every buffer is recycled, so the heap must be silent.
    let end = ex.run(&mut system, horizon);
    let events = ex.events_processed() - events_before;
    let allocs = HEAP_ACQUISITIONS.load(Ordering::Relaxed) - allocs_before;

    assert!(
        events > 1_000,
        "{what}: measured half processed only {events} events — not a meaningful audit"
    );
    assert_eq!(
        allocs, 0,
        "{what}: steady state performed {allocs} heap acquisitions over {events} events"
    );

    // The run itself must still be a valid, completing simulation.
    let metrics = system.finish(end);
    assert!(metrics.totcom > 0, "{what}: no transactions completed");
}

#[test]
fn table1_steady_state_allocates_nothing() {
    assert_steady_state_is_silent(ModelConfig::table1().with_tmax(4_000.0), "probabilistic");
}

/// The explicit model runs the conservative protocol against the real
/// pooled lock table: granule sampling, request merging, blocking,
/// wake-up and retry must all recycle their buffers.
#[test]
fn explicit_steady_state_allocates_nothing() {
    let cfg = ModelConfig::table1()
        .with_conflict(ConflictMode::Explicit)
        .with_tmax(4_000.0);
    assert_steady_state_is_silent(cfg, "explicit");
}

/// Incremental 2PL adds the waits-for graph, deadlock detection and
/// victim abort/replay on top of the lock table — the full machinery
/// must be allocation-free once warm.
#[test]
fn twophase_steady_state_allocates_nothing() {
    let cfg = ModelConfig::table1()
        .with_conflict(ConflictMode::Twophase)
        .with_tmax(4_000.0);
    assert_steady_state_is_silent(cfg, "twophase");
}

/// Arena reuse audit: the second run through a [`RunArena`] must get by
/// on a small, `ntrans`-independent allocation budget. The first run
/// builds the slab, the conflict tables, the FEL buckets and every
/// scratch buffer; the reset keeps all of it, so run two only pays for
/// the few structures rebuilt per reset (the response histogram and the
/// per-processor server vector — O(npros + histogram buckets), not
/// O(ntrans) or O(events)).
#[test]
fn arena_second_run_allocates_a_small_fraction_of_the_first() {
    let cfg = ModelConfig::table1().with_tmax(1_500.0);
    let mut arena = lockgran_core::RunArena::new();

    let before_first = HEAP_ACQUISITIONS.load(Ordering::Relaxed);
    let first = arena.run(&cfg, 7);
    let after_first = HEAP_ACQUISITIONS.load(Ordering::Relaxed);

    let second = arena.run(&cfg, 8);
    let after_second = HEAP_ACQUISITIONS.load(Ordering::Relaxed);

    assert!(first.totcom > 0 && second.totcom > 0);
    let cold = after_first - before_first;
    let warm = after_second - after_first;
    assert!(
        warm * 10 <= cold,
        "arena reuse saved too little: cold run {cold} acquisitions, warm run {warm}"
    );
}
