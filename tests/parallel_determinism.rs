//! Determinism under parallelism: the sweep fan-out must be a pure
//! performance knob. `sweep_ltot` at any `--jobs` value has to produce
//! the same bytes as the sequential run — same seeds, same float
//! rounding, same ordering.

use lockgran_core::{ConflictMode, HierarchySpec, ModelConfig};
use lockgran_experiments::sweep::sweep_ltot;
use lockgran_experiments::{RunOptions, SweepPoint};
use lockgran_sim::ToJson;
use lockgran_workload::FailureSpec;

/// Serialize a sweep to JSON text — `RunMetrics` has no `PartialEq`, and
/// byte-identical serialized output is the stronger claim anyway (it is
/// exactly what the committed figure artifacts are made of).
fn fingerprint(points: &[SweepPoint]) -> String {
    let mut s = String::new();
    for p in points {
        s.push_str(&format!("ltot={}\n", p.ltot));
        for m in &p.runs {
            s.push_str(&m.to_json().to_string());
            s.push('\n');
        }
    }
    s
}

fn sweep_with_jobs(jobs: usize) -> Vec<SweepPoint> {
    let base = ModelConfig::table1();
    let mut opts = RunOptions::quick();
    opts.jobs = jobs;
    sweep_ltot(&base, &opts)
}

/// The tentpole guarantee: jobs = 1, 2 and 8 produce byte-identical
/// metrics for every `(ltot, rep)` cell.
#[test]
fn sweep_is_byte_identical_across_job_counts() {
    let sequential = fingerprint(&sweep_with_jobs(1));
    for jobs in [2, 8] {
        let parallel = fingerprint(&sweep_with_jobs(jobs));
        assert_eq!(sequential, parallel, "sweep output diverged at jobs={jobs}");
    }
}

/// Multi-replication sweeps gather `(ltot, rep)` cells in submission
/// order even when reps interleave across workers.
#[test]
fn replicated_sweep_identical_across_job_counts() {
    let base = ModelConfig::table1();
    let sweep = |jobs: usize| {
        let opts = RunOptions {
            quick: false,
            reps: 3,
            tmax: Some(400.0),
            jobs,
            ..RunOptions::default()
        };
        sweep_ltot(&base, &opts)
    };
    let a = fingerprint(&sweep(1));
    let b = fingerprint(&sweep(4));
    assert_eq!(a, b);
}

/// `jobs = 0` resolves to a concrete worker count and still matches the
/// sequential run (the default configuration is the parallel one).
#[test]
fn auto_jobs_matches_sequential() {
    let auto = fingerprint(&sweep_with_jobs(0));
    let sequential = fingerprint(&sweep_with_jobs(1));
    assert_eq!(auto, sequential);
}

/// The hierarchical conflict model keeps the guarantee: an extG-style
/// sweep (multigranularity tree, intent locks, eager escalation) is
/// byte-identical at `--jobs 1` and `--jobs 4`. Escalation decisions and
/// blocker choices are pure functions of the run's own seed.
#[test]
fn hierarchical_sweep_identical_across_job_counts() {
    let base = ModelConfig::table1()
        .with_conflict(ConflictMode::Hierarchical)
        .with_hierarchy(Some(
            HierarchySpec::default()
                .with_areas(16)
                .with_escalation_threshold(Some(4)),
        ));
    let sweep = |jobs: usize| {
        let mut opts = RunOptions::quick();
        opts.jobs = jobs;
        sweep_ltot(&base, &opts)
    };
    let a = fingerprint(&sweep(1));
    let b = fingerprint(&sweep(4));
    assert_eq!(a, b, "hierarchical sweep diverged across job counts");
    assert!(
        a.contains("\"escalations\":"),
        "fingerprint should include the escalations counter"
    );
}

/// Incremental 2PL keeps the guarantee: an extI-style sweep (hot-spot
/// contention, waits-for deadlock detection, youngest-victim aborts and
/// replays) is byte-identical at `--jobs 1` and `--jobs 4`. Victim
/// choice and replay scheduling are pure functions of the run's own
/// seed, never of worker interleaving — and the sweep reuses arenas, so
/// this also exercises the `reset`-equals-fresh contract for the
/// twophase model.
#[test]
fn twophase_sweep_identical_across_job_counts() {
    let base = ModelConfig::table1()
        .with_conflict(ConflictMode::Twophase)
        .with_ntrans(50)
        .with_maxtransize(50)
        .with_hot_spot(Some(lockgran_workload::HotSpot::eighty_twenty()));
    let sweep = |jobs: usize| {
        let mut opts = RunOptions::quick();
        opts.jobs = jobs;
        sweep_ltot(&base, &opts)
    };
    let a = fingerprint(&sweep(1));
    let b = fingerprint(&sweep(4));
    assert_eq!(a, b, "twophase sweep diverged across job counts");
    assert!(
        a.contains("\"deadlocks\":"),
        "fingerprint should include the deadlocks counter"
    );
}

/// The failure extension keeps the guarantee: an extF-style sweep with
/// processors failing and transactions aborting is byte-identical at
/// `--jobs 1` and `--jobs 4`. Failure randomness comes from the run's
/// own seed, never from worker scheduling.
#[test]
fn failure_sweep_identical_across_job_counts() {
    let base = ModelConfig::table1().with_failure(Some(FailureSpec::new(150.0, 30.0)));
    let sweep = |jobs: usize| {
        let mut opts = RunOptions::quick();
        opts.jobs = jobs;
        sweep_ltot(&base, &opts)
    };
    let a = fingerprint(&sweep(1));
    let b = fingerprint(&sweep(4));
    assert_eq!(a, b, "failure-mode sweep diverged across job counts");
    assert!(
        a.contains("\"aborts\":"),
        "fingerprint should include the aborts counter"
    );
}
