//! Cross-crate integration tests: the paper's qualitative results.
//!
//! Each test asserts one "who wins / where is the crossover" claim from
//! the paper's evaluation (§3), using quick-mode sweeps. These are the
//! reproduction criteria recorded in EXPERIMENTS.md.

use lockgran::experiments::figures;
use lockgran::experiments::RunOptions;
use lockgran::prelude::*;

fn opts() -> RunOptions {
    RunOptions::quick()
}

/// §3.1 / Fig 2: throughput is convex in ltot with an interior optimum
/// below 200 locks, for every processor count.
#[test]
fn fig2_throughput_convex_with_small_optimum() {
    let f = figures::fig02::run(&opts());
    for s in &f.panel("throughput").unwrap().series {
        let opt = s.argmax().unwrap();
        assert!(opt > 1.0, "{}: optimum at the single-lock end", s.label);
        assert!(opt < 200.0, "{}: optimum at {opt} >= 200", s.label);
        let peak = s.max_mean().unwrap();
        assert!(
            s.at(1.0).unwrap() < peak,
            "{}: no rise from ltot=1",
            s.label
        );
        assert!(
            s.at(5000.0).unwrap() < peak,
            "{}: no fall to ltot=5000",
            s.label
        );
    }
}

/// §3.1 / Fig 2: the penalty for entity-level locking grows with the
/// number of processors (absolute throughput lost).
#[test]
fn fig2_fine_granularity_penalty_grows_with_npros() {
    let f = figures::fig02::run(&opts());
    let panel = f.panel("throughput").unwrap();
    let penalty = |label: &str| {
        let s = panel.series(label).unwrap();
        s.max_mean().unwrap() - s.at(5000.0).unwrap()
    };
    assert!(penalty("npros=30") > penalty("npros=10"));
    assert!(penalty("npros=10") > penalty("npros=1"));
}

/// §3.2 / Fig 6: smaller transactions give higher throughput everywhere
/// and their optimum sits at least as far right.
#[test]
fn fig6_transaction_size_effects() {
    let f = figures::fig06::run(&opts());
    let panel = f.panel("throughput").unwrap();
    let small = panel.series("maxtransize=50").unwrap();
    let mid = panel.series("maxtransize=500").unwrap();
    let large = panel.series("maxtransize=5000").unwrap();
    for ((s, m), l) in small
        .points
        .iter()
        .zip(mid.points.iter())
        .zip(large.points.iter())
    {
        assert!(
            s.mean > m.mean && m.mean > l.mean,
            "ordering broken at ltot={}",
            s.x
        );
    }
    assert!(small.argmax().unwrap() >= large.argmax().unwrap());
}

/// §3.3 / Fig 7: removing lock I/O cost helps at fine granularity but
/// does not move the conclusion — throughput plateaus, it does not keep
/// climbing.
#[test]
fn fig7_memory_resident_lock_table_plateaus() {
    let f = figures::fig07::run(&opts());
    let free = f.panel("throughput").unwrap().series("liotime=0").unwrap();
    let peak = free.max_mean().unwrap();
    let fine = free.at(5000.0).unwrap();
    assert!(fine >= 0.7 * peak, "fine {fine} vs peak {peak}");
    // And the optimum is still at or below a few hundred locks.
    assert!(free.argmax().unwrap() <= 1000.0);
}

/// §3.4 / Fig 8: horizontal partitioning dominates random partitioning
/// at every granularity (for a parallel machine).
#[test]
fn fig8_horizontal_beats_random_partitioning() {
    let o = opts();
    let horizontal = figures::fig02::run(&o);
    let random = figures::fig08::run(&o);
    for label in ["npros=10", "npros=30"] {
        let h = horizontal
            .panel("throughput")
            .unwrap()
            .series(label)
            .unwrap()
            .clone();
        let r = random
            .panel("throughput")
            .unwrap()
            .series(label)
            .unwrap()
            .clone();
        for (hp, rp) in h.points.iter().zip(r.points.iter()) {
            assert!(hp.mean > rp.mean, "{label} ltot={}", hp.x);
        }
    }
}

/// §3.5 / Figs 9–10: the placement crossover. Large random transactions
/// dip until ltot reaches the transaction size; small random transactions
/// make entity-level locking the best choice.
#[test]
fn fig9_fig10_placement_crossover() {
    let o = opts();
    let large = figures::fig09::run(&o);
    let small = figures::fig10::run(&o);

    let lw = large
        .panel("throughput")
        .unwrap()
        .series("worst/npros=30")
        .unwrap()
        .clone();
    // Dip-and-recover for large transactions.
    assert!(lw.at(100.0).unwrap() < lw.at(1.0).unwrap());
    assert!(lw.at(5000.0).unwrap() > lw.at(100.0).unwrap());

    // Fine granularity is the *argmax* for small random transactions.
    for label in ["random/npros=30", "worst/npros=30"] {
        let s = small
            .panel("throughput")
            .unwrap()
            .series(label)
            .unwrap()
            .clone();
        assert_eq!(s.argmax().unwrap(), 5000.0, "{label}");
    }
}

/// §3.6 / Fig 11: the 80/20 mix lands between the all-small and
/// all-large systems, far below all-small.
#[test]
fn fig11_mixed_sizes_between_extremes() {
    let o = opts();
    let mixed = figures::fig11::run(&o);
    let large = figures::fig09::run(&o);
    let small = figures::fig10::run(&o);
    let at_fine = |f: &Figure, label: &str| {
        f.panel("throughput")
            .unwrap()
            .series(label)
            .unwrap()
            .at(5000.0)
            .unwrap()
    };
    let m = at_fine(&mixed, "worst");
    let l = at_fine(&large, "worst/npros=30");
    let s = at_fine(&small, "worst/npros=30");
    assert!(l < m && m < s, "large {l}, mixed {m}, small {s}");
}

/// §3.7 / Fig 12: under heavy load (ntrans = 200) fine granularity loses
/// to coarse granularity for every placement.
#[test]
fn fig12_heavy_load_prefers_coarse() {
    let f = figures::fig12::run(&opts());
    for s in &f.panel("throughput").unwrap().series {
        assert!(
            s.at(5000.0).unwrap() < s.at(10.0).unwrap(),
            "{}: fine granularity won under heavy load",
            s.label
        );
    }
}

/// Conclusion §4: "reducing the lock I/O cost does not improve the
/// performance of a multiprocessor system substantially" at sensible
/// (near-optimal) granularity.
#[test]
fn conclusion_lock_io_cost_hardly_matters_at_optimum() {
    let base = ModelConfig::table1()
        .with_npros(10)
        .with_ltot(100)
        .with_tmax(1_500.0);
    let disk = run(&base, 9);
    let memory = run(&base.with_liotime(0.0), 9);
    let gain = memory.throughput / disk.throughput;
    assert!(
        (0.95..=1.30).contains(&gain),
        "memory-resident lock table changed throughput by {gain}x at the optimum"
    );
}
