//! Cross-crate integration tests: reproducibility guarantees.

use lockgran::prelude::*;

/// Bit-for-bit reproducibility of a full run.
#[test]
fn identical_seeds_identical_metrics() {
    let cfg = ModelConfig::table1().with_tmax(1_000.0);
    let a = run(&cfg, 0xABCD);
    let b = run(&cfg, 0xABCD);
    assert_eq!(a.totcom, b.totcom);
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.response_time.to_bits(), b.response_time.to_bits());
    assert_eq!(a.totcpus.to_bits(), b.totcpus.to_bits());
    assert_eq!(a.totios.to_bits(), b.totios.to_bits());
    assert_eq!(a.lockcpus.to_bits(), b.lockcpus.to_bits());
    assert_eq!(a.lockios.to_bits(), b.lockios.to_bits());
    assert_eq!(a.lock_attempts, b.lock_attempts);
    assert_eq!(a.lock_denials, b.lock_denials);
}

/// Replications with distinct derived seeds differ from each other but
/// the aggregate is reproducible.
#[test]
fn replications_reproducible() {
    let cfg = ModelConfig::table1().with_tmax(800.0);
    let a = run_replicated(&cfg, 7, 4);
    let b = run_replicated(&cfg, 7, 4);
    assert_eq!(a.throughput.mean.to_bits(), b.throughput.mean.to_bits());
    assert_eq!(a.throughput.ci95.to_bits(), b.throughput.ci95.to_bits());
    // Replications are genuinely distinct runs.
    assert!(a.runs.windows(2).any(|w| w[0].totcom != w[1].totcom
        || w[0].response_time != w[1].response_time));
}

/// Sweep points share workload streams (common random numbers): the
/// transaction-size sequence must not depend on ltot. Verified
/// indirectly — with conflict-free locking (ltot at entity level and a
/// single terminal) the completed-work totals per seed agree across two
/// unrelated ltot values.
#[test]
fn common_random_numbers_across_sweep() {
    let mk = |ltot: u64| {
        ModelConfig::table1()
            .with_ntrans(1)
            .with_ltot(ltot)
            .with_tmax(2_000.0)
    };
    // One terminal: no conflicts, so completions depend only on sizes and
    // (tiny) lock overhead. The completed counts must be nearly equal.
    let a = run(&mk(10), 99);
    let b = run(&mk(100), 99);
    assert!(
        (a.totcom as i64 - b.totcom as i64).abs() <= 1,
        "size streams diverged: {} vs {}",
        a.totcom,
        b.totcom
    );
}

/// The serde round trip of a config reproduces the identical simulation.
#[test]
fn config_serde_round_trip_runs_identically() {
    let cfg = ModelConfig::table1()
        .with_npros(7)
        .with_ltot(37)
        .with_placement(Placement::Random)
        .with_tmax(500.0);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: ModelConfig = serde_json::from_str(&json).unwrap();
    let a = run(&cfg, 11);
    let b = run(&back, 11);
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.totcom, b.totcom);
}
