//! Cross-crate integration tests: reproducibility guarantees.

use lockgran::prelude::*;

/// Bit-for-bit reproducibility of a full run.
#[test]
fn identical_seeds_identical_metrics() {
    let cfg = ModelConfig::table1().with_tmax(1_000.0);
    let a = run(&cfg, 0xABCD);
    let b = run(&cfg, 0xABCD);
    assert_eq!(a.totcom, b.totcom);
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.response_time.to_bits(), b.response_time.to_bits());
    assert_eq!(a.totcpus.to_bits(), b.totcpus.to_bits());
    assert_eq!(a.totios.to_bits(), b.totios.to_bits());
    assert_eq!(a.lockcpus.to_bits(), b.lockcpus.to_bits());
    assert_eq!(a.lockios.to_bits(), b.lockios.to_bits());
    assert_eq!(a.lock_attempts, b.lock_attempts);
    assert_eq!(a.lock_denials, b.lock_denials);
}

/// Replications with distinct derived seeds differ from each other but
/// the aggregate is reproducible.
#[test]
fn replications_reproducible() {
    let cfg = ModelConfig::table1().with_tmax(800.0);
    let a = run_replicated(&cfg, 7, 4);
    let b = run_replicated(&cfg, 7, 4);
    assert_eq!(a.throughput.mean.to_bits(), b.throughput.mean.to_bits());
    assert_eq!(a.throughput.ci95.to_bits(), b.throughput.ci95.to_bits());
    // Replications are genuinely distinct runs.
    assert!(a
        .runs
        .windows(2)
        .any(|w| w[0].totcom != w[1].totcom || w[0].response_time != w[1].response_time));
}

/// Sweep points share workload streams (common random numbers): the
/// transaction-size sequence must not depend on ltot. Verified
/// indirectly — with conflict-free locking (ltot at entity level and a
/// single terminal) the completed-work totals per seed agree across two
/// unrelated ltot values.
#[test]
fn common_random_numbers_across_sweep() {
    let mk = |ltot: u64| {
        ModelConfig::table1()
            .with_ntrans(1)
            .with_ltot(ltot)
            .with_tmax(2_000.0)
    };
    // One terminal: no conflicts, so completions depend only on sizes and
    // (tiny) lock overhead. The completed counts must be nearly equal.
    let a = run(&mk(10), 99);
    let b = run(&mk(100), 99);
    assert!(
        (a.totcom as i64 - b.totcom as i64).abs() <= 1,
        "size streams diverged: {} vs {}",
        a.totcom,
        b.totcom
    );
}

/// Golden snapshot of the Table 1 baseline at seed 42.
///
/// These values were re-pinned when the in-tree xoshiro256++ generator
/// replaced the external `rand` SmallRng: the random stream (and thus
/// every seed-sensitive output) changed once, deliberately, at that
/// point. They must never change again — any drift means a behavioural
/// change in the RNG, the workload generator or the simulator kernel,
/// and must be investigated, not re-pinned.
#[test]
fn table1_seed42_golden_snapshot() {
    let m = run(&ModelConfig::table1(), 42);
    assert_eq!(m.totcom, 1907);
    assert_eq!(m.throughput, 0.1907);
    assert_eq!(m.response_time, 52.266_182_485_579_47);
    assert_eq!(m.usefulcpus, 2415.79);
    assert_eq!(m.usefulios, 9667.365);
    assert_eq!(m.lockcpus, 166.03);
    assert_eq!(m.lockios, 3320.6);
    assert_eq!(m.denial_rate, 0.366_015_236_833_388_55);
    assert_eq!(m.lock_attempts, 3019);
    assert_eq!(m.lock_denials, 1105);
}

/// The JSON round trip of a config reproduces the identical simulation.
#[test]
fn config_json_round_trip_runs_identically() {
    use lockgran::sim::{FromJson, ToJson};
    let cfg = ModelConfig::table1()
        .with_npros(7)
        .with_ltot(37)
        .with_placement(Placement::Random)
        .with_tmax(500.0);
    let text = cfg.to_json().pretty();
    let back = ModelConfig::from_json(&lockgran::sim::json::parse(&text).unwrap()).unwrap();
    let a = run(&cfg, 11);
    let b = run(&back, 11);
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.totcom, b.totcom);
}
