//! Cross-crate integration tests: the probabilistic conflict model
//! (the paper's approximation) against the explicit lock table and the
//! multigranularity hierarchy.

use lockgran::prelude::*;

fn throughput(cfg: &ModelConfig, mode: ConflictMode, seed: u64) -> f64 {
    run(&cfg.clone().with_conflict(mode), seed).throughput
}

/// At the serial extreme (ltot = 1) both models agree exactly in
/// structure: one active transaction, everyone else blocked.
#[test]
fn agreement_at_single_lock() {
    let cfg = ModelConfig::table1().with_ltot(1).with_tmax(1_000.0);
    let p = run(&cfg.clone().with_conflict(ConflictMode::Probabilistic), 4);
    let e = run(&cfg.with_conflict(ConflictMode::Explicit), 4);
    assert!(p.mean_active <= 1.0 + 1e-9);
    assert!(e.mean_active <= 1.0 + 1e-9);
    let ratio = p.throughput / e.throughput;
    assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
}

/// At entity-level granularity with small transactions, conflicts are
/// rare under both models and throughputs converge.
#[test]
fn agreement_at_fine_granularity_small_transactions() {
    let cfg = ModelConfig::table1()
        .with_maxtransize(50)
        .with_ltot(5000)
        .with_tmax(1_000.0);
    let p = throughput(&cfg, ConflictMode::Probabilistic, 8);
    let e = throughput(&cfg, ConflictMode::Explicit, 8);
    let ratio = p / e;
    assert!((0.85..=1.15).contains(&ratio), "ratio {ratio}");
}

/// Across the full sweep the approximation stays within a factor band —
/// the paper's shortcut does not distort its conclusions.
#[test]
fn approximation_band_across_sweep() {
    let base = ModelConfig::table1().with_tmax(1_000.0);
    for ltot in [1u64, 10, 100, 1000, 5000] {
        let cfg = base.clone().with_ltot(ltot);
        let p = throughput(&cfg, ConflictMode::Probabilistic, 15);
        let e = throughput(&cfg, ConflictMode::Explicit, 15);
        let ratio = p / e;
        assert!(
            (0.55..=1.8).contains(&ratio),
            "ltot={ltot}: probabilistic {p} vs explicit {e} (ratio {ratio})"
        );
    }
}

/// Both models produce the paper's headline convexity.
#[test]
fn explicit_model_reproduces_convexity() {
    let base = ModelConfig::table1()
        .with_conflict(ConflictMode::Explicit)
        .with_tmax(1_000.0);
    let at = |ltot: u64| run(&base.clone().with_ltot(ltot), 2).throughput;
    let coarse = at(1);
    let mid = at(50);
    let fine = at(5000);
    assert!(mid > coarse, "no rise: {mid} !> {coarse}");
    assert!(mid > fine, "no fall: {mid} !> {fine}");
}

/// Degeneracy property: escalation threshold 1 collapses every request to
/// a whole-database lock, so the hierarchical model behaves like the
/// paper's `ltot = 1` serial extreme at *any* configured `ltot` — exactly
/// one transaction active at a time, with throughput matching the
/// explicit table at `ltot = 1`.
#[test]
fn hierarchy_threshold_one_degenerates_to_whole_database_locking() {
    let hier = ModelConfig::table1()
        .with_ltot(500)
        .with_tmax(1_000.0)
        .with_conflict(ConflictMode::Hierarchical)
        .with_hierarchy(Some(
            HierarchySpec::default().with_escalation_threshold(Some(1)),
        ));
    let h = run(&hier, 6);
    assert!(
        h.mean_active <= 1.0 + 1e-9,
        "mean_active {} > 1 under immediate escalation",
        h.mean_active
    );
    assert!(h.escalations > 0, "no escalations recorded");
    let coarse = run(
        &ModelConfig::table1()
            .with_ltot(1)
            .with_tmax(1_000.0)
            .with_conflict(ConflictMode::Explicit),
        6,
    );
    // Both serialize completely; the residual difference is lock-overhead
    // accounting (LU differs between ltot=1 and ltot=500).
    let ratio = h.throughput / coarse.throughput;
    assert!((0.5..=1.05).contains(&ratio), "ratio {ratio}");
}

/// Agreement property: with escalation off every non-leaf lock is an IX
/// intent, intents never conflict with each other, and the first conflict
/// is always at a leaf — so the hierarchical model admits *exactly* the
/// explicit table's schedules. Same seed, same access draws, bit-equal
/// metrics.
#[test]
fn hierarchy_without_escalation_agrees_with_explicit_bitwise() {
    for ltot in [10u64, 500, 5000] {
        let base = ModelConfig::table1().with_ltot(ltot).with_tmax(1_000.0);
        let e = run(&base.clone().with_conflict(ConflictMode::Explicit), 9);
        let h = run(
            &base
                .with_conflict(ConflictMode::Hierarchical)
                .with_hierarchy(Some(
                    HierarchySpec::default()
                        .with_areas(16)
                        .with_escalation_threshold(None),
                )),
            9,
        );
        assert_eq!(e.totcom, h.totcom, "ltot={ltot}: totcom diverged");
        assert_eq!(
            e.throughput, h.throughput,
            "ltot={ltot}: throughput diverged"
        );
        assert_eq!(
            e.response_time, h.response_time,
            "ltot={ltot}: response time diverged"
        );
        assert_eq!(
            e.denial_rate, h.denial_rate,
            "ltot={ltot}: denial rate diverged"
        );
        assert_eq!(
            h.escalations, 0,
            "ltot={ltot}: escalated with threshold=inf"
        );
        assert!(h.intent_locks > 0, "ltot={ltot}: no intent locks recorded");
    }
}

/// The explicit model's blocking is *sparser* than worst-case: with best
/// placement (contiguous runs), realized overlaps at moderate ltot are
/// less frequent than the probabilistic expectation assumes at high
/// contention — denial rates reflect the same ordering of regimes in
/// both models.
#[test]
fn denial_rates_track_granularity_in_both_models() {
    let base = ModelConfig::table1().with_tmax(1_000.0);
    for mode in [ConflictMode::Probabilistic, ConflictMode::Explicit] {
        let coarse = run(&base.clone().with_ltot(1).with_conflict(mode), 3).denial_rate;
        let fine = run(&base.clone().with_ltot(5000).with_conflict(mode), 3).denial_rate;
        assert!(
            coarse > fine,
            "{mode:?}: denial at ltot=1 ({coarse}) !> at ltot=5000 ({fine})"
        );
    }
}
