//! Cross-crate integration tests: the probabilistic conflict model
//! (the paper's approximation) against the explicit lock table.

use lockgran::prelude::*;

fn throughput(cfg: &ModelConfig, mode: ConflictMode, seed: u64) -> f64 {
    run(&cfg.clone().with_conflict(mode), seed).throughput
}

/// At the serial extreme (ltot = 1) both models agree exactly in
/// structure: one active transaction, everyone else blocked.
#[test]
fn agreement_at_single_lock() {
    let cfg = ModelConfig::table1().with_ltot(1).with_tmax(1_000.0);
    let p = run(&cfg.clone().with_conflict(ConflictMode::Probabilistic), 4);
    let e = run(&cfg.with_conflict(ConflictMode::Explicit), 4);
    assert!(p.mean_active <= 1.0 + 1e-9);
    assert!(e.mean_active <= 1.0 + 1e-9);
    let ratio = p.throughput / e.throughput;
    assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
}

/// At entity-level granularity with small transactions, conflicts are
/// rare under both models and throughputs converge.
#[test]
fn agreement_at_fine_granularity_small_transactions() {
    let cfg = ModelConfig::table1()
        .with_maxtransize(50)
        .with_ltot(5000)
        .with_tmax(1_000.0);
    let p = throughput(&cfg, ConflictMode::Probabilistic, 8);
    let e = throughput(&cfg, ConflictMode::Explicit, 8);
    let ratio = p / e;
    assert!((0.85..=1.15).contains(&ratio), "ratio {ratio}");
}

/// Across the full sweep the approximation stays within a factor band —
/// the paper's shortcut does not distort its conclusions.
#[test]
fn approximation_band_across_sweep() {
    let base = ModelConfig::table1().with_tmax(1_000.0);
    for ltot in [1u64, 10, 100, 1000, 5000] {
        let cfg = base.clone().with_ltot(ltot);
        let p = throughput(&cfg, ConflictMode::Probabilistic, 15);
        let e = throughput(&cfg, ConflictMode::Explicit, 15);
        let ratio = p / e;
        assert!(
            (0.55..=1.8).contains(&ratio),
            "ltot={ltot}: probabilistic {p} vs explicit {e} (ratio {ratio})"
        );
    }
}

/// Both models produce the paper's headline convexity.
#[test]
fn explicit_model_reproduces_convexity() {
    let base = ModelConfig::table1()
        .with_conflict(ConflictMode::Explicit)
        .with_tmax(1_000.0);
    let at = |ltot: u64| run(&base.clone().with_ltot(ltot), 2).throughput;
    let coarse = at(1);
    let mid = at(50);
    let fine = at(5000);
    assert!(mid > coarse, "no rise: {mid} !> {coarse}");
    assert!(mid > fine, "no fall: {mid} !> {fine}");
}

/// The explicit model's blocking is *sparser* than worst-case: with best
/// placement (contiguous runs), realized overlaps at moderate ltot are
/// less frequent than the probabilistic expectation assumes at high
/// contention — denial rates reflect the same ordering of regimes in
/// both models.
#[test]
fn denial_rates_track_granularity_in_both_models() {
    let base = ModelConfig::table1().with_tmax(1_000.0);
    for mode in [ConflictMode::Probabilistic, ConflictMode::Explicit] {
        let coarse = run(&base.clone().with_ltot(1).with_conflict(mode), 3).denial_rate;
        let fine = run(&base.clone().with_ltot(5000).with_conflict(mode), 3).denial_rate;
        assert!(
            coarse > fine,
            "{mode:?}: denial at ltot=1 ({coarse}) !> at ltot=5000 ({fine})"
        );
    }
}
